(** Exact floating-point expansion arithmetic (Shewchuk, 1997).

    An {e expansion} here is a [float array] whose components are
    nonoverlapping and stored in order of {b increasing} magnitude
    (Shewchuk's convention, the opposite of the paper's MultiFloat order).
    The value of the expansion is the exact real sum of its components.

    Sums and products of machine floats are computed {b exactly} — no
    information is ever discarded — which makes this module the reference
    oracle against which the branch-free FPAN algorithms are verified.
    These algorithms branch and allocate freely; they are the "adaptive
    arbitrary-precision" baseline class the paper contrasts with FPANs,
    and they are deliberately unoptimized. *)

type t = private float array
(** A nonoverlapping expansion, smallest-magnitude component first.
    Zero components may be present; the empty array represents 0. *)

val zero : t
val of_float : float -> t

val of_array_unchecked : float array -> t
(** Wrap an array the caller promises is a nonoverlapping
    increasing-magnitude expansion.  Checked with an assertion. *)

val components : t -> float array
(** Copy of the underlying components. *)

val grow : t -> float -> t
(** [grow e b] is the exact sum [e + b] as an expansion
    (Shewchuk's GROW-EXPANSION; O(|e|) TwoSums). *)

val sum : t -> t -> t
(** Exact sum of two expansions. *)

val sum_floats : float array -> t
(** Exact sum of arbitrary machine floats (any order, any signs). *)

val scale : t -> float -> t
(** [scale e b] is the exact product [e * b] (SCALE-EXPANSION). *)

val mul : t -> t -> t
(** Exact product of two expansions (pairwise {!Eft.two_prod} then
    exact summation). *)

val neg : t -> t

val compress : t -> t
(** Shewchuk's COMPRESS: eliminates zero components and concentrates the
    value in the largest components; the result is nonoverlapping with no
    interleaved zeros, and its largest component approximates the total
    to within an ulp. *)

val approx : t -> float
(** Sum of components, smallest first — a good (not always correctly
    rounded) float approximation of the exact value. *)

val sign : t -> int
(** Exact sign of the value: -1, 0, or +1. *)

val compare_abs_scaled : t -> scale:float -> bound:float -> int
(** [compare_abs_scaled e ~scale ~bound] compares [|value e|] with
    [|scale| * bound] exactly, returning the usual -1/0/+1.  [bound] must
    be a nonnegative power of two (so the product is exact); this is the
    primitive used to check the paper's error bounds
    [|discarded| <= 2^-q * |z0|]. *)

val is_exactly : t -> float -> bool
(** [is_exactly e x] tests whether the exact value equals the float [x]. *)

val to_string : t -> string
(** Debug rendering of the component list. *)
