(* Exact expansion arithmetic, after Shewchuk, "Adaptive Precision
   Floating-Point Arithmetic and Fast Robust Geometric Predicates",
   Discrete & Computational Geometry 18 (1997).

   Components are stored in increasing order of magnitude and are
   nonoverlapping in Shewchuk's sense (disjoint bit ranges), which is
   weaker than the paper's Eq. 8 but sufficient for exactness and for
   sign determination: the largest nonzero component alone determines
   the sign of the whole expansion. *)

type t = float array

let zero = [||]

let of_float x =
  assert (Float.is_finite x);
  if x = 0.0 then [||] else [| x |]

let of_array_unchecked xs =
  assert (Array.for_all Float.is_finite xs);
  Array.copy xs

let components e = Array.copy e

(* GROW-EXPANSION: exact sum of an expansion and one float.  The chain of
   TwoSums preserves the total exactly; Shewchuk's Theorem 10 shows the
   output is nonoverlapping and increasing when the input is. *)
let grow e b =
  assert (Float.is_finite b);
  let m = Array.length e in
  let h = Array.make (m + 1) 0.0 in
  let q = ref b in
  for i = 0 to m - 1 do
    let s, err = Eft.two_sum !q e.(i) in
    q := s;
    h.(i) <- err
  done;
  h.(m) <- !q;
  h

let sum e f = Array.fold_left grow e f

let sum_floats xs = Array.fold_left grow zero xs

let neg e = Array.map (fun x -> -.x) e

(* SCALE-EXPANSION: exact product of an expansion by one float. *)
let scale e b =
  assert (Float.is_finite b);
  let m = Array.length e in
  if m = 0 || b = 0.0 then [||]
  else begin
    let h = Array.make (2 * m) 0.0 in
    let q, h0 = Eft.two_prod e.(0) b in
    h.(0) <- h0;
    let q = ref q in
    for i = 1 to m - 1 do
      let ti, tlo = Eft.two_prod e.(i) b in
      let q', h_even = Eft.two_sum !q tlo in
      h.((2 * i) - 1) <- h_even;
      let q'', h_odd = Eft.fast_two_sum ti q' in
      h.(2 * i) <- h_odd;
      q := q''
    done;
    h.((2 * m) - 1) <- !q;
    h
  end

let mul e f =
  let parts = ref [] in
  Array.iter
    (fun x ->
      Array.iter
        (fun y ->
          let p, err = Eft.two_prod x y in
          parts := p :: err :: !parts)
        f)
    e;
  sum_floats (Array.of_list !parts)

(* COMPRESS (Shewchuk Fig. 15): squeeze out zeros and concentrate the
   value in the top components.  Traverse downward absorbing with
   FastTwoSum, then upward re-emitting. *)
let compress e =
  let m = Array.length e in
  if m = 0 then [||]
  else begin
    let g = Array.make m 0.0 in
    let q = ref e.(m - 1) in
    let bottom = ref (m - 1) in
    for i = m - 2 downto 0 do
      let s, err = Eft.fast_two_sum !q e.(i) in
      if err <> 0.0 then begin
        g.(!bottom) <- s;
        decr bottom;
        q := err
      end
      else q := s
    done;
    g.(!bottom) <- !q;
    let h = Array.make m 0.0 in
    let top = ref 0 in
    let q = ref g.(!bottom) in
    for i = !bottom + 1 to m - 1 do
      let s, err = Eft.fast_two_sum g.(i) !q in
      if err <> 0.0 then begin
        h.(!top) <- err;
        incr top
      end;
      q := s
    done;
    if !q <> 0.0 || !top = 0 then begin
      h.(!top) <- !q;
      incr top
    end;
    Array.sub h 0 !top
  end

let approx e = Array.fold_left ( +. ) 0.0 e

let sign e =
  (* Largest-magnitude nonzero component decides; components are stored
     in increasing order, so scan from the top. *)
  let rec scan i = if i < 0 then 0 else if e.(i) <> 0.0 then compare e.(i) 0.0 else scan (i - 1) in
  scan (Array.length e - 1)

let abs e = if sign e < 0 then neg e else e

let compare_abs_scaled e ~scale:s ~bound =
  assert (bound >= 0.0);
  assert (Float.is_finite s && Float.is_finite bound);
  let p, perr = Eft.two_prod (Float.abs s) bound in
  let diff = grow (grow (abs e) (-.p)) (-.perr) in
  sign diff

let is_exactly e x = sign (grow e (-.x)) = 0

let to_string e =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string buf "; ";
      Buffer.add_string buf (Printf.sprintf "%h" x))
    e;
  Buffer.add_char buf ']';
  Buffer.contents buf
