lib/parallel/pool.mli:
