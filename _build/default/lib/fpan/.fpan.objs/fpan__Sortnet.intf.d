lib/fpan/sortnet.mli:
