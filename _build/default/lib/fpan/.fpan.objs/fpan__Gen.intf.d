lib/fpan/gen.mli: Random
