lib/fpan/analyze.mli: Format Network
