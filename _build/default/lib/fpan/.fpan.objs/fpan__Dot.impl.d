lib/fpan/dot.ml: Array Buffer Network Printf
