lib/fpan/gen.ml: Array Eft Float Random
