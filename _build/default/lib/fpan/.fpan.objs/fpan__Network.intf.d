lib/fpan/network.mli: Format
