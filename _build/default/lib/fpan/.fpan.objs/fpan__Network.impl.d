lib/fpan/network.ml: Array Format List
