lib/fpan/analyze.ml: Array Format List Network
