lib/fpan/search.mli: Network Random
