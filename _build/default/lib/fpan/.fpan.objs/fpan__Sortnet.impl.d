lib/fpan/sortnet.ml: Array Float List Stdlib
