lib/fpan/enumerate.mli: Format Network
