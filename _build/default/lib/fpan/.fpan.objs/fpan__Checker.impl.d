lib/fpan/checker.ml: Array Eft Exact Float Format Gen Interp List Network Random
