lib/fpan/interp.mli: Network
