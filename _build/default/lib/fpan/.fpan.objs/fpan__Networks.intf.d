lib/fpan/networks.mli: Network
