lib/fpan/search.ml: Array Checker Float List Network Networks Printf Random
