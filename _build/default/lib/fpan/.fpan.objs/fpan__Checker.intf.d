lib/fpan/checker.mli: Exact Format Network
