lib/fpan/dot.mli: Network
