lib/fpan/networks.ml: Array Eft Hashtbl List Network Printf
