lib/fpan/interp.ml: Array Eft List Network
