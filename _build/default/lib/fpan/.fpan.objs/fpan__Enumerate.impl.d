lib/fpan/enumerate.ml: Array Checker Eft Exact Float Format Gen List Network Networks Printf Random
