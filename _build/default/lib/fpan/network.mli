(** Floating-point accumulation networks (FPANs) as data.

    An FPAN is a branch-free algorithm given by a fixed sequence of
    gates applied to a fixed set of wires (Section 3 of the paper).
    Values flow left to right; a gate reads two wires and writes one or
    two of them:

    - an {b addition} gate replaces the top wire with the rounded sum
      and zeroes the bottom wire, {e discarding} the rounding error;
    - a {b TwoSum} gate puts the rounded sum on the top wire and the
      exact rounding error on the bottom wire;
    - a {b FastTwoSum} gate does the same in fewer operations but
      requires the top value to have the larger exponent (or either
      value to be zero). *)

type kind =
  | Add
  | Two_sum
  | Fast_two_sum

type gate = {
  kind : kind;
  top : int;  (** wire receiving the sum *)
  bot : int;  (** wire receiving the error (zeroed for [Add]) *)
}

type t = {
  name : string;
  num_wires : int;
  inputs : int array;  (** wire carrying each input, in input order *)
  gates : gate array;
  outputs : int array;  (** wires read as [z_0 .. z_{n-1}], leading term first *)
  error_exp : int;
      (** claimed accuracy [q]: the sum of all discarded terms is bounded
          by [2^-q * |exact sum of the inputs|] *)
}

val make :
  name:string ->
  num_wires:int ->
  inputs:int array ->
  gates:gate list ->
  outputs:int array ->
  error_exp:int ->
  t
(** Builds a network after validating wire indices. *)

val size : t -> int
(** Number of gates. *)

val depth : t -> int
(** Number of gates on the longest input-to-output directed path. *)

val flops : t -> int
(** Machine flops per evaluation: 1 per Add, 6 per TwoSum, 3 per
    FastTwoSum. *)

val gate_counts : t -> int * int * int
(** [(adds, two_sums, fast_two_sums)]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable gate listing. *)
