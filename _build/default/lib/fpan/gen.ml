type rng = Random.State.t

(* A full-width random mantissa in [2^52, 2^53), as a float. *)
let rand_mantissa rng = Float.of_int ((1 lsl 52) + Random.State.full_int rng (1 lsl 52))

let rand_sign rng = if Random.State.bool rng then 1.0 else -1.0

(* A random leading term with exponent near [e0]. *)
let leading rng e0 =
  match Random.State.int rng 8 with
  | 0 -> rand_sign rng *. Float.ldexp 1.0 e0 (* power of two *)
  | 1 -> rand_sign rng *. Float.ldexp (Float.of_int (1 + Random.State.int rng 4095)) (e0 - 11)
  | _ -> rand_sign rng *. Float.ldexp (rand_mantissa rng) (e0 - 52)

(* A random term bounded by half an ulp of [prev] (Eq. 8), biased toward
   the adversarial extremes. *)
let next_term rng prev =
  let bound_exp = Eft.exponent prev - 53 in
  if bound_exp - 53 < -1000 then 0.0
  else
    match Random.State.int rng 8 with
    | 0 -> 0.0
    | 1 -> rand_sign rng *. Float.ldexp 1.0 bound_exp (* exactly the tie boundary *)
    | 2 -> rand_sign rng *. Float.ldexp 1.0 (bound_exp - Random.State.int rng 20)
    | 3 ->
        (* the largest representable value strictly below the boundary *)
        rand_sign rng *. Float.pred (Float.ldexp 1.0 bound_exp)
    | _ ->
        let gap = if Random.State.bool rng then 0 else -Random.State.int rng 12 in
        rand_sign rng *. Float.ldexp (rand_mantissa rng) (bound_exp - 53 + gap)

let expansion rng ~n ?(e0_min = -80) ?(e0_max = 80) () =
  let e0 = e0_min + Random.State.int rng (e0_max - e0_min + 1) in
  let xs = Array.make n 0.0 in
  xs.(0) <- leading rng e0;
  for i = 1 to n - 1 do
    xs.(i) <- (if xs.(i - 1) = 0.0 then 0.0 else next_term rng xs.(i - 1))
  done;
  assert (Eft.is_nonoverlapping_seq xs);
  xs

(* Extend a partially-filled expansion whose last nonzero term is
   [xs.(i-1)]. *)
let fill_tail rng xs i =
  let n = Array.length xs in
  for j = i to n - 1 do
    xs.(j) <- (if xs.(j - 1) = 0.0 then 0.0 else next_term rng xs.(j - 1))
  done

let pair rng ~n ?(e0_min = -80) ?(e0_max = 80) () =
  let x = expansion rng ~n ~e0_min ~e0_max () in
  let y =
    match Random.State.int rng 6 with
    | 0 | 1 ->
        (* independent operand *)
        expansion rng ~n ~e0_min ~e0_max ()
    | 2 ->
        (* cancel the first k terms exactly, then diverge *)
        let k = 1 + Random.State.int rng n in
        let y = Array.make n 0.0 in
        for i = 0 to k - 1 do
          y.(i) <- -.x.(i)
        done;
        if k < n then fill_tail rng y k;
        y
    | 3 ->
        (* exact scaled copy (stays nonoverlapping), random sign *)
        let shift = Random.State.int rng 5 - 2 in
        let s = rand_sign rng in
        Array.map (fun v -> s *. Float.ldexp v shift) x
    | 4 ->
        (* same leading exponent, fresh mantissas: near-cancellation *)
        let y = Array.make n 0.0 in
        y.(0) <- -.Float.copy_sign (Float.ldexp (rand_mantissa rng) (Eft.exponent x.(0) - 52)) x.(0);
        fill_tail rng y 1;
        y
    | _ ->
        (* y0 within a few ulps of -x0: deep partial cancellation *)
        let k = Float.of_int (Random.State.int rng 9 - 4) in
        let y0 = -.x.(0) +. (k *. Eft.ulp x.(0)) in
        let y = Array.make n 0.0 in
        y.(0) <- (if y0 = 0.0 then leading rng (Eft.exponent x.(0)) else y0);
        fill_tail rng y 1;
        y
  in
  assert (Eft.is_nonoverlapping_seq y);
  (x, y)

let interleave x y =
  let n = Array.length x in
  assert (Array.length y = n);
  Array.init (2 * n) (fun i -> if i land 1 = 0 then x.(i / 2) else y.(i / 2))
