type failure =
  | Overlapping_output
  | Error_bound_exceeded
  | Inexact_fast_two_sum

type counterexample = {
  inputs : float array;
  outputs : float array;
  failure : failure;
}

type report = {
  cases_run : int;
  failure_count : int;
  failures : counterexample list;
  worst_error_log2 : float;
}

let passed r = r.failure_count = 0

(* |value| as a float, good to a relative 2^-53 — fine for reporting the
   worst observed error exponent. *)
let approx_abs e = Float.abs (Exact.approx (Exact.compress e))

let check_one net ~reference ~inputs ~audit =
  let outputs = audit.Interp.outputs in
  if audit.Interp.precondition_violations > 0 then Some { inputs; outputs; failure = Inexact_fast_two_sum }
  else if not (Eft.is_nonoverlapping_seq outputs) then Some { inputs; outputs; failure = Overlapping_output }
  else begin
    (* discarded = reference - sum(outputs), computed exactly *)
    let discarded = Array.fold_left Exact.grow reference (Array.map Float.neg outputs) in
    (* bound = 2^-q * |reference|, also exact: scaling by a power of two *)
    let q = net.Network.error_exp in
    let scaled =
      let abs_ref = if Exact.sign reference < 0 then Exact.neg reference else reference in
      Exact.scale abs_ref (Float.ldexp 1.0 (-q))
    in
    let abs_disc = if Exact.sign discarded < 0 then Exact.neg discarded else discarded in
    let slack = Exact.sum scaled (Exact.neg abs_disc) in
    if Exact.sign slack < 0 then Some { inputs; outputs; failure = Error_bound_exceeded } else None
  end

let error_log2 ~reference ~outputs =
  let discarded = Array.fold_left Exact.grow reference (Array.map Float.neg outputs) in
  let d = approx_abs discarded and r = approx_abs reference in
  if d = 0.0 then Float.neg_infinity
  else if r = 0.0 then Float.infinity
  else Float.log2 d -. Float.log2 r

let check_sum_against net ~reference ~inputs ~outputs =
  ignore outputs;
  let audit = Interp.run_audited net inputs in
  check_one net ~reference ~inputs ~audit

let check_outputs net ~inputs =
  let reference = Exact.sum_floats inputs in
  let audit = Interp.run_audited net inputs in
  check_one net ~reference ~inputs ~audit

let drive net ~cases ~seed ~make_case =
  let rng = Random.State.make [| seed |] in
  let failures = ref [] in
  let nfail = ref 0 in
  let worst = ref Float.neg_infinity in
  for _ = 1 to cases do
    let inputs, reference = make_case rng in
    let audit = Interp.run_audited net inputs in
    (match check_one net ~reference ~inputs ~audit with
    | Some cex ->
        incr nfail;
        if !nfail <= 10 then failures := cex :: !failures
    | None -> ());
    let e = error_log2 ~reference ~outputs:audit.Interp.outputs in
    if e > !worst then worst := e
  done;
  { cases_run = cases; failure_count = !nfail; failures = List.rev !failures; worst_error_log2 = !worst }

let check_add net ~terms ~cases ~seed =
  drive net ~cases ~seed ~make_case:(fun rng ->
      let x, y = Gen.pair rng ~n:terms () in
      let inputs = Gen.interleave x y in
      (inputs, Exact.sum_floats inputs))

let check_mul net ~terms ~expand ~cases ~seed =
  drive net ~cases ~seed ~make_case:(fun rng ->
      (* Keep exponents well inside the range where the discarded product
         terms stay normal: |e0| <= 120 keeps all n^2 partial products far
         from both thresholds. *)
      let x, y = Gen.pair rng ~n:terms ~e0_min:(-120) ~e0_max:120 () in
      let inputs = expand x y in
      let reference = Exact.mul (Exact.sum_floats x) (Exact.sum_floats y) in
      (inputs, reference))

let failure_name = function
  | Overlapping_output -> "overlapping output"
  | Error_bound_exceeded -> "error bound exceeded"
  | Inexact_fast_two_sum -> "inexact FastTwoSum"

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%d cases, %d failures, worst error 2^%.2f@," r.cases_run
    r.failure_count r.worst_error_log2;
  List.iteri
    (fun i cex ->
      Format.fprintf ppf "  #%d %s@,    in : " i (failure_name cex.failure);
      Array.iter (fun v -> Format.fprintf ppf "%h " v) cex.inputs;
      Format.fprintf ppf "@,    out: ";
      Array.iter (fun v -> Format.fprintf ppf "%h " v) cex.outputs;
      Format.fprintf ppf "@,")
    r.failures;
  Format.fprintf ppf "@]"
