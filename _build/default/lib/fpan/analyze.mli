(** Static exponent-domain analysis of FPANs — the lightweight stand-in
    for the paper's SMT-based verifier [53] (see DESIGN.md).

    The SMT procedure tracks sign, exponent, and partial mantissa
    information per wire and proves the correctness conditions for all
    inputs.  Without a solver, this module propagates {e exponent upper
    bounds} through the network: every wire gets a sound bound on its
    exponent relative to the leading input exponent [e0], derived from
    the nonoverlapping input invariant (Eq. 8) and the TwoSum error
    bound (error <= ulp(sum)/2).

    This yields a machine-checked {e no-cancellation certificate}: a
    sound upper bound on the exponent of every individually discarded
    error term relative to [e0].  When the exact result satisfies
    [|sum| >= 2^(e0 - slack)], the certificate implies the paper's
    error bound.  The cancellation cases that the certificate cannot
    reach are exactly what the randomized {!Checker} hammers on. *)

type input_kind =
  | Add_inputs of int  (** interleaved x/y terms of two n-term expansions *)
  | Mul_inputs of int  (** the [mul_expand n] product/error layout *)

type report = {
  wire_exponents : int array;
      (** final upper bound of each wire's exponent, relative to e0 *)
  discarded_exponents : int list;
      (** upper bound of each Add gate's discarded error, relative to e0 *)
  discarded_total_exponent : int;
      (** sound bound on the exponent of the SUM of discarded errors,
          relative to e0 *)
  fast_two_sum_gates : int;
      (** FastTwoSum gates, whose ordering precondition this analysis
          does not discharge (the checker tests it dynamically) *)
}

val analyze : Network.t -> input_kind -> report

val certifies : Network.t -> input_kind -> slack:int -> bool
(** [certifies net kind ~slack] holds when the analysis proves
    [|sum of discarded| <= 2^-q |S|] for every input whose exact result
    satisfies [|S| >= 2^(e0 - slack)], where [q = net.error_exp]. *)

val pp : Format.formatter -> report -> unit
