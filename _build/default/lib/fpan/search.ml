let kinds = [| Network.Add; Network.Two_sum; Network.Fast_two_sum |]

let with_gates (net : Network.t) gates =
  Network.make ~name:net.name ~num_wires:net.num_wires ~inputs:net.inputs ~gates
    ~outputs:net.outputs ~error_exp:net.error_exp

let mutate rng (net : Network.t) =
  let gates = Array.to_list net.gates in
  let n = List.length gates in
  let pick_wire () = Random.State.int rng net.num_wires in
  let random_gate () =
    let top = pick_wire () in
    let rec bot () =
      let w = pick_wire () in
      if w = top then bot () else w
    in
    { Network.kind = kinds.(Random.State.int rng 3); top; bot = bot () }
  in
  let choice = Random.State.int rng 10 in
  let gates' =
    if n = 0 || choice < 2 then begin
      (* insert at a random position *)
      let pos = Random.State.int rng (n + 1) in
      let rec ins i = function
        | rest when i = pos -> random_gate () :: rest
        | [] -> [ random_gate () ]
        | g :: rest -> g :: ins (i + 1) rest
      in
      ins 0 gates
    end
    else if choice < 6 then
      (* delete a random gate: removal pressure dominates *)
      let pos = Random.State.int rng n in
      List.filteri (fun i _ -> i <> pos) gates
    else if choice < 8 then
      (* retype a random gate *)
      let pos = Random.State.int rng n in
      List.mapi
        (fun i g -> if i = pos then { g with Network.kind = kinds.(Random.State.int rng 3) } else g)
        gates
    else if n >= 2 then begin
      (* swap two adjacent gates *)
      let pos = Random.State.int rng (n - 1) in
      let arr = Array.of_list gates in
      let t = arr.(pos) in
      arr.(pos) <- arr.(pos + 1);
      arr.(pos + 1) <- t;
      Array.to_list arr
    end
    else gates
  in
  with_gates net gates'

let cost net = Float.of_int ((100 * Network.size net) + Network.depth net)

(* The discovery phase of Section 4.1: "random TwoSum gates were added
   to an empty FPAN until it passed the automatic verification
   procedure".  Returns the first passing network found, or None after
   [attempts] random growths. *)
let grow_from_empty ~seed ~terms ~attempts ?(quick_cases = 4000) () =
  let rng = Random.State.make [| seed; 0x960c |] in
  let num_wires = 2 * terms in
  let inputs = Array.init num_wires (fun i -> i) in
  let outputs = Array.init terms (fun i -> 2 * i) in
  let random_gate () =
    let top = Random.State.int rng num_wires in
    let rec bot () =
      let w = Random.State.int rng num_wires in
      if w = top then bot () else w
    in
    (* mostly TwoSum, as in the paper; some adds *)
    let kind = if Random.State.int rng 4 = 0 then Network.Add else Network.Two_sum in
    { Network.kind; top; bot = bot () }
  in
  let check net =
    Checker.passed (Checker.check_add net ~terms ~cases:quick_cases ~seed:(Random.State.int rng 1_000_000))
  in
  let found = ref None in
  let attempt = ref 0 in
  while !found = None && !attempt < attempts do
    incr attempt;
    let gates = ref [] in
    let size = ref 0 in
    let max_size = (10 * terms) + 10 in
    while !found = None && !size < max_size do
      gates := !gates @ [ random_gate () ];
      incr size;
      let net =
        Network.make
          ~name:(Printf.sprintf "grown-add%d" terms)
          ~num_wires ~inputs ~gates:!gates ~outputs ~error_exp:((53 * terms) - terms)
      in
      if check net then begin
        (* confirm with a stronger run before declaring success *)
        if
          Checker.passed
            (Checker.check_add net ~terms ~cases:(50 * quick_cases) ~seed:(seed + !attempt))
        then found := Some net
      end
    done
  done;
  !found

let anneal ~seed ~steps ~terms ~is_mul ?(quick_cases = 2000) net =
  let rng = Random.State.make [| seed; 0x5ea4c4 |] in
  let check ~cases candidate =
    let report =
      if is_mul then
        Checker.check_mul candidate ~terms ~expand:(Networks.mul_expand terms) ~cases
          ~seed:(Random.State.int rng 1_000_000)
      else Checker.check_add candidate ~terms ~cases ~seed:(Random.State.int rng 1_000_000)
    in
    Checker.passed report
  in
  let current = ref net in
  let best = ref net in
  for step = 1 to steps do
    let temperature = 50.0 *. (1.0 -. (Float.of_int step /. Float.of_int steps)) in
    let candidate = mutate rng !current in
    if check ~cases:quick_cases candidate then begin
      let delta = cost candidate -. cost !current in
      let accept =
        delta <= 0.0 || Random.State.float rng 1.0 < Float.exp (-.delta /. Float.max temperature 1e-9)
      in
      if accept then current := candidate;
      if cost candidate < cost !best then best := candidate
    end
  done;
  (* Final acceptance needs to be far stronger than the per-step
     screen: heuristic candidates routinely pass tens of thousands of
     random cases and still violate nonoverlap about once per ~50k
     structured inputs (see EXPERIMENTS.md). *)
  if check ~cases:(500 * quick_cases) !best then !best else net
