(** Exhaustive enumeration of small FPANs — the other half of the
    paper's Figure 2 optimality proof.

    The paper proves the 2-term addition network optimal "by exhaustive
    enumeration of every FPAN with size <= 6 and depth <= 4: every such
    FPAN, besides the one shown, either fails to produce a
    nonoverlapping result or computes a sum with error strictly
    exceeding 2^-(2p-1)".  This module reproduces the lower-bound half
    at laptop scale: enumerate {e all} gate sequences of a given size
    over four wires (3 gate kinds x 12 ordered wire pairs per slot) and
    all 12 output-pair choices, and show that none meets the Figure 2
    specification.

    A two-stage filter keeps this tractable: a fixed battery of
    adversarial inputs with precomputed correctly-rounded expected
    outputs rejects almost every candidate with a handful of float
    operations (a necessary condition: some output pair must be
    nonoverlapping with the expected value on every battery input);
    the rare survivors go to the full randomized {!Checker}. *)

type result = {
  candidates : int;  (** gate sequences enumerated *)
  battery_survivors : int;  (** passed the quick battery *)
  verified_correct : Network.t list;
      (** survivors that also pass the full checker (empty = lower
          bound holds at this size) *)
}

val search_size : size:int -> ?checker_cases:int -> ?seed:int -> unit -> result
(** Enumerate every [size]-gate FPAN for 2-term addition against the
    Figure 2 specification (nonoverlapping output, discarded error
    <= 2^-105 |x+y|). *)

val search_mul2_size : size:int -> ?checker_cases:int -> ?seed:int -> unit -> result
(** The same enumeration against the Figure 5 specification (2-term
    multiplication accumulation over the [mul_expand 2] inputs,
    nonoverlap + [2^-103 |xy|]).  The paper proves size 3 optimal; the
    spaces below it (36^2 + 36 + 1 candidates) are checked exhaustively
    in the test suite. *)

val pp_result : Format.formatter -> result -> unit
