let ts top bot = { Network.kind = Network.Two_sum; top; bot }
let fts top bot = { Network.kind = Network.Fast_two_sum; top; bot }
let add_g top bot = { Network.kind = Network.Add; top; bot }

(* Figure 2.  Inputs [x0; y0; x1; y1] on wires 0-3.  Size 6 and depth 4,
   matching the paper's provably-optimal network exactly, with the
   discarded-error bound 2^-(2p-1).  Note this is NOT the textbook
   AccurateDWPlusDW of Joldes, Muller & Popescu (2017): that algorithm
   (also size 6, but depth 5) has worst-case discarded error 2.25u^2 =
   2^-104.83, which exceeds the paper's bound; this wiring sums both
   error terms symmetrically and stays within 2^-105. *)
let add2 =
  Network.make ~name:"add2" ~num_wires:4
    ~inputs:[| 0; 1; 2; 3 |]
    ~gates:
      [ ts 0 1; (* (s0, e0) = TwoSum (x0, y0) *)
        ts 2 3; (* (s1, e1) = TwoSum (x1, y1) *)
        ts 0 2; (* (v, vl)  = TwoSum (s0, s1) *)
        add_g 1 3; (* c     = e0 + e1 *)
        add_g 2 1; (* w     = vl + c *)
        fts 0 2 (* (z0, z1) = FastTwoSum (v, w) *) ]
    ~outputs:[| 0; 2 |] ~error_exp:105

(* Figure 3 reconstruction.  Inputs [x0; y0; ...; x2; y2] on wires 0-5:
   a commutativity layer, two absorption rounds, a residue heap, and a
   renormalization chain. *)
let add3 =
  Network.make ~name:"add3" ~num_wires:6
    ~inputs:[| 0; 1; 2; 3; 4; 5 |]
    ~gates:
      [ ts 0 1; (* (s0, e0) *)
        ts 2 3; (* (s1, e1) *)
        ts 4 5; (* (s2, e2) *)
        ts 2 1; (* s1 += e0, t1 on w1 *)
        ts 4 3; (* s2 += e1, t2 on w3 *)
        ts 4 1; (* s2 += t1, t3 on w1 *)
        add_g 3 1; (* r = t2 + t3 *)
        add_g 3 5; (* r += e2 *)
        (* three bottom-up consolidation passes over [s0; s1'; s2''; r]:
           the third pass repairs multi-level cancellation *)
        ts 4 3; ts 2 4; ts 0 2;
        ts 4 3; ts 2 4; ts 0 2;
        ts 4 3; ts 2 4; ts 0 2;
        (* tail: z2 collects the last two residues *)
        add_g 4 3 ]
    ~outputs:[| 0; 2; 4 |] ~error_exp:156

(* Figure 4 reconstruction.  Inputs [x0; y0; ...; x3; y3] on wires 0-7. *)
let add4 =
  Network.make ~name:"add4" ~num_wires:8
    ~inputs:[| 0; 1; 2; 3; 4; 5; 6; 7 |]
    ~gates:
      [ ts 0 1; (* (s0, e0) *)
        ts 2 3; (* (s1, e1) *)
        ts 4 5; (* (s2, e2) *)
        ts 6 7; (* (s3, e3) *)
        ts 2 1; (* s1 += e0, t1 *)
        ts 4 3; (* s2 += e1, t2 *)
        ts 6 5; (* s3 += e2, t3 *)
        ts 4 1; (* s2 += t1, u1 *)
        ts 6 3; (* s3 += t2, u2 *)
        ts 6 1; (* s3 += u1, u3 *)
        add_g 3 1; (* u2 + u3 *)
        add_g 5 7; (* t3 + e3 *)
        add_g 3 5; (* residue r on w3 *)
        (* three bottom-up consolidation passes over [s0; s1; s2; s3; r] *)
        ts 6 3; ts 4 6; ts 2 4; ts 0 2;
        ts 6 3; ts 4 6; ts 2 4; ts 0 2;
        ts 6 3; ts 4 6; ts 2 4; ts 0 2;
        (* tail: z3 collects the last two residues, then renormalize *)
        add_g 6 3;
        ts 4 6;
        ts 2 4 ]
    ~outputs:[| 0; 2; 4; 6 |] ~error_exp:208

(* Figure 5: inputs [p00; p01; p10; e00] on wires 0-3; size 3, depth 3. *)
let mul2 =
  Network.make ~name:"mul2" ~num_wires:4
    ~inputs:[| 0; 1; 2; 3 |]
    ~gates:
      [ add_g 1 2; (* t = p01 + p10  (commutative) *)
        add_g 1 3; (* u = t + e00 *)
        fts 0 1 (* (z0, z1) = FastTwoSum (p00, u) *) ]
    ~outputs:[| 0; 1 |] ~error_exp:103

(* Figure 6 reconstruction.  Inputs
   [p00; p01; p10; e00; p02; p11; p20; e01; e10] on wires 0-8. *)
let mul3 =
  Network.make ~name:"mul3" ~num_wires:9
    ~inputs:[| 0; 1; 2; 3; 4; 5; 6; 7; 8 |]
    ~gates:
      [ ts 1 2; (* A = p01 + p10, b on w2  (commutative) *)
        ts 1 3; (* B = A + e00, b2 on w3 *)
        add_g 4 6; (* p02 + p20  (commutative) *)
        add_g 4 5; (* + p11 *)
        add_g 7 8; (* e01 + e10  (commutative) *)
        add_g 4 7; (* second-order heap E on w4 *)
        add_g 2 3; (* D = b + b2 *)
        add_g 4 2; (* E += D *)
        (* two consolidation passes over [p00; B; E] and a final split *)
        ts 1 4; ts 0 1;
        ts 1 4; ts 0 1;
        ts 1 4 ]
    ~outputs:[| 0; 1; 4 |] ~error_exp:156

(* Figure 7 reconstruction.  Inputs
   [p00; p01; p10; e00; p02; p11; p20; e01; e10;
    p03; p12; p21; p30; e02; e11; e20] on wires 0-15. *)
let mul4 =
  Network.make ~name:"mul4" ~num_wires:16
    ~inputs:[| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 |]
    ~gates:
      [ ts 1 2; (* A1 = p01 + p10, r1 on w2  (commutative) *)
        ts 1 3; (* B1 = A1 + e00, r2 on w3 *)
        ts 4 6; (* p02 + p20, r3 on w6  (commutative) *)
        ts 4 5; (* + p11, r4 on w5 *)
        ts 7 8; (* e01 + e10, r5 on w8  (commutative) *)
        ts 4 7; (* C2 on w4, r6 on w7 *)
        ts 2 3; (* D = r1 + r2, r7 on w3 *)
        ts 4 2; (* E2 = C2 + D on w4, r8 on w2 *)
        add_g 9 12; (* p03 + p30  (commutative) *)
        add_g 10 11; (* p12 + p21  (commutative) *)
        add_g 9 10; (* third-order products on w9 *)
        add_g 13 15; (* e02 + e20  (commutative) *)
        add_g 13 14; (* + e11 *)
        add_g 9 13; (* on w9 *)
        add_g 6 5; (* r3 + r4 *)
        add_g 8 7; (* r5 + r6 *)
        add_g 6 8;
        add_g 3 2; (* r7 + r8 *)
        add_g 6 3;
        add_g 9 6; (* R3 = total third order on w9 *)
        (* two consolidation passes over [p00; B1; E2; R3] and a tail *)
        ts 4 9; ts 1 4; ts 0 1;
        ts 4 9; ts 1 4; ts 0 1;
        ts 4 9; ts 1 4; ts 4 9 ]
    ~outputs:[| 0; 1; 4; 9 |] ~error_exp:208

let add = function
  | 2 -> add2
  | 3 -> add3
  | 4 -> add4
  | n -> invalid_arg (Printf.sprintf "Networks.add: unsupported expansion length %d" n)

let mul = function
  | 2 -> mul2
  | 3 -> mul3
  | 4 -> mul4
  | n -> invalid_arg (Printf.sprintf "Networks.mul: unsupported expansion length %d" n)

(* The expansion step of Section 4.2: TwoProd for every pair with
   i + j <= n-2 (their error terms survive the cutoff), a plain product
   for i + j = n-1, nothing above.  Layout: products of ascending total
   order (i ascending within an order), each order followed by the error
   terms of the TwoProds one order below. *)
let mul_expand n x y =
  assert (Array.length x = n && Array.length y = n);
  let out = ref [] in
  let push v = out := v :: !out in
  (* order 0 *)
  let p00, e00 = Eft.two_prod x.(0) y.(0) in
  push p00;
  let errs = ref [ [ e00 ] ] in
  for o = 1 to n - 1 do
    let new_errs = ref [] in
    for i = 0 to o do
      let j = o - i in
      if i < n && j < n then
        if o <= n - 2 then begin
          let p, e = Eft.two_prod x.(i) y.(j) in
          push p;
          new_errs := e :: !new_errs
        end
        else push (x.(i) *. y.(j))
    done;
    (* error terms of the products one order below this one *)
    (match !errs with
    | prev :: rest ->
        List.iter push (List.rev prev);
        errs := rest
    | [] -> ());
    errs := !errs @ [ List.rev !new_errs ]
  done;
  Array.of_list (List.rev !out)

let mul_flops n =
  let expansion = (2 * (n * (n - 1) / 2)) + n in
  expansion + Network.flops (mul n)

(* Programmatic generalization of the add2/add3/add4 structure to any
   n: pairing layer, error-absorption diagonals, residue heap, three
   bottom-up consolidation passes, and the final residue add.  For
   n = 3, 4 this produces the same shape as the hand-written networks
   (modulo gate order); for n >= 5 it extends the family beyond the
   paper's sizes.  Validated by the checker in the test suite. *)
let add_n n =
  assert (n >= 2);
  let x i = 2 * i in
  let y i = (2 * i) + 1 in
  let gates = ref [] in
  let push g = gates := g :: !gates in
  (* pairing layer: (s_i, e_i) = TwoSum (x_i, y_i), s on x-wire, e on
     y-wire *)
  for i = 0 to n - 1 do
    push (ts (x i) (y i))
  done;
  (* absorption diagonals: sweep errors downward level by level *)
  for level = 0 to n - 2 do
    for i = level + 1 to n - 1 do
      (* absorb the error living on y-wire (i - 1 - level ... ) *)
      if i - 1 - level >= 0 then push (ts (x i) (y (i - 1 - level)))
    done
  done
  |> ignore;
  (* after the sweeps the leftover errors live on y-wires 0..n-1; heap
     them into y(n-2) with adds (all at the lowest order) *)
  for i = 0 to n - 1 do
    if i <> n - 2 then push (add_g (y (n - 2)) (y i))
  done;
  (* bottom-up consolidation passes over [s_0..s_{n-1}; r]: three are
     enough through n = 4; deeper hierarchies need one per level *)
  for _ = 1 to max 3 (n - 1) do
    push (ts (x (n - 1)) (y (n - 2)));
    for i = n - 2 downto 0 do
      push (ts (x i) (x (i + 1)))
    done
  done;
  (* fold the last residue into the bottom, one more full bottom-up
     pass, then a top-down distribution chain so each adjacent output
     pair comes from the last TwoSum that touched it *)
  push (add_g (x (n - 1)) (y (n - 2)));
  for i = n - 2 downto 0 do
    push (ts (x i) (x (i + 1)))
  done;
  for i = 1 to n - 2 do
    push (ts (x i) (x (i + 1)))
  done;
  Network.make
    ~name:(Printf.sprintf "add%d-gen" n)
    ~num_wires:(2 * n)
    ~inputs:(Array.init (2 * n) (fun i -> i))
    ~gates:(List.rev !gates)
    ~outputs:(Array.init n (fun i -> x i))
    ~error_exp:((n * 53) - n)

(* Programmatic generalization of the multiplication accumulation
   network to any n, consuming the [mul_expand n] layout.  Per total
   order: the symmetric product pairs and error pairs are combined
   first (the commutativity layer), with TwoSum below the last order so
   the rounding error joins the next order's heap, plain Add at the
   last order; then the per-order heap wires are consolidated exactly
   like the addition networks.  Validated by the checker in the test
   suite (claimed bound 2^-(53 n - n - 2)). *)
let mul_n n =
  assert (n >= 2);
  (* Recreate mul_expand's wire layout: wire index of each (i, j)
     product and of each TwoProd error. *)
  let next_wire = ref 0 in
  let wire () =
    let w = !next_wire in
    incr next_wire;
    w
  in
  let prod = Hashtbl.create 16 in
  let perr = Hashtbl.create 16 in
  Hashtbl.replace prod (0, 0) (wire ());
  let e_queue = ref [ [ (0, 0) ] ] in
  for o = 1 to n - 1 do
    let new_errs = ref [] in
    for i = 0 to o do
      let j = o - i in
      if i < n && j < n then begin
        Hashtbl.replace prod (i, j) (wire ());
        if o <= n - 2 then new_errs := (i, j) :: !new_errs
      end
    done;
    (match !e_queue with
    | prev :: rest ->
        List.iter (fun ij -> Hashtbl.replace perr ij (wire ())) prev;
        e_queue := rest
    | [] -> ());
    e_queue := !e_queue @ [ List.rev !new_errs ]
  done;
  let num_wires = !next_wire in
  let gates = ref [] in
  let push g = gates := g :: !gates in
  (* members of each order's heap: products of order o, errors of
     TwoProds of order o-1, and carried TwoSum errors *)
  let carried = Array.make (n + 1) [] in
  let heap = Array.make n 0 in
  heap.(0) <- Hashtbl.find prod (0, 0);
  for o = 1 to n - 1 do
    let last = o = n - 1 in
    let combine w1 w2 =
      (* combine w2 into w1; capture the error below the last order *)
      if last then push (add_g w1 w2)
      else begin
        push (ts w1 w2);
        carried.(o + 1) <- w2 :: carried.(o + 1)
      end
    in
    (* symmetric product pairs (commutativity layer) *)
    let members = ref [] in
    for i = 0 to o do
      let j = o - i in
      if i < j && i < n && j < n then begin
        let wij = Hashtbl.find prod (i, j) and wji = Hashtbl.find prod (j, i) in
        combine wij wji;
        members := wij :: !members
      end
      else if i = j && i < n then members := Hashtbl.find prod (i, j) :: !members
    done;
    (* error terms of order o: errors of TwoProds with i + j = o - 1 *)
    let errs = ref [] in
    for i = 0 to o - 1 do
      let j = o - 1 - i in
      if i < n && j < n && Hashtbl.mem perr (i, j) then
        if i < j then begin
          let wij = Hashtbl.find perr (i, j) and wji = Hashtbl.find perr (j, i) in
          combine wij wji;
          errs := wij :: !errs
        end
        else if i = j then errs := Hashtbl.find perr (i, j) :: !errs
    done;
    (* heap everything into the first member *)
    let all_members = !members @ !errs @ carried.(o) in
    match all_members with
    | [] -> assert false
    | h :: rest ->
        heap.(o) <- h;
        List.iter (fun w -> combine h w) rest
  done;
  (* consolidation passes over the heap wires, as in the addition
     networks, then the final split *)
  for _ = 1 to max 2 (n - 1) do
    for i = n - 2 downto 0 do
      push (ts heap.(i) heap.(i + 1))
    done
  done;
  for i = 1 to n - 2 do
    push (ts heap.(i) heap.(i + 1))
  done;
  Network.make
    ~name:(Printf.sprintf "mul%d-gen" n)
    ~num_wires
    ~inputs:(Array.init num_wires (fun i -> i))
    ~gates:(List.rev !gates)
    ~outputs:(Array.init n (fun i -> heap.(i)))
    ~error_exp:((53 * n) - n - 2)

let all =
  [ ("add2", add2); ("add3", add3); ("add4", add4); ("mul2", mul2); ("mul3", mul3); ("mul4", mul4) ]
