(** The concrete FPANs of the paper (Figures 2-7).

    Figures 3, 4, 6 and 7 are images whose exact wiring is not
    recoverable from the paper text, so the 3- and 4-term networks here
    are reconstructions that follow the structure the paper describes —
    an initial commutativity layer of TwoSum gates pairing corresponding
    terms, followed by error absorption and renormalization — and are
    validated by {!Checker} to the paper's stated error bounds.  The
    2-term networks (Figures 2 and 5) are fully determined by published
    algorithms with matching size and depth.

    Addition networks take [2n] interleaved inputs
    [x0, y0, x1, y1, ..., x_{n-1}, y_{n-1}] (Eq. 10) and produce [n]
    nonoverlapping outputs.

    Multiplication networks take the [n^2] inputs produced by
    {!mul_expand}: the error-free partial products that survive the
    magnitude cutoff of Section 4.2. *)

val add2 : Network.t
(** Figure 2: provably optimal 2-term addition; size 6, depth 4,
    discarded error at most [2^-(2p-1) |x+y|]. *)

val add3 : Network.t
(** Figure 3 reconstruction: 3-term addition; bound [2^-(3p-3) |x+y|]. *)

val add4 : Network.t
(** Figure 4 reconstruction: 4-term addition; bound [2^-(4p-4) |x+y|]. *)

val mul2 : Network.t
(** Figure 5: provably optimal 2-term multiplication accumulation; size
    3, depth 3, bound [2^-(2p-3) |xy|]. *)

val mul3 : Network.t
(** Figure 6 reconstruction: 3-term multiplication; bound
    [2^-(3p-3) |xy|]. *)

val mul4 : Network.t
(** Figure 7 reconstruction: 4-term multiplication; bound
    [2^-(4p-4) |xy|]. *)

val add : int -> Network.t
(** [add n] for n = 2, 3, 4. *)

val mul : int -> Network.t
(** [mul n] for n = 2, 3, 4. *)

val mul_expand : int -> float array -> float array -> float array
(** [mul_expand n x y] performs the expansion step of Section 4.2 on two
    [n]-term expansions: [n(n-1)/2] TwoProd operations for the partial
    products whose error term survives, plus [n] plain products for the
    terms of total order [n-1].  The result is laid out in the input
    order expected by [mul n]: partial products grouped by ascending
    total order [i+j] (with the TwoProd error terms of order [o-1]
    following the products of order [o]). *)

val mul_flops : int -> int
(** Total machine flops of an n-term multiplication: expansion step plus
    accumulation network. *)

val add_n : int -> Network.t
(** Programmatic generalization of the addition-network structure to
    any [n >= 2] (pairing layer, absorption sweeps, residue heap, three
    consolidation passes).  For [n <= 4] prefer the tuned {!add}
    networks; beyond that this extends the family past the paper's
    sizes, with the claimed bound [2^-(53 n - n)] validated by the
    checker in the test suite. *)

val mul_n : int -> Network.t
(** Programmatic generalization of the multiplication accumulation
    network to any [n >= 2], consuming the {!mul_expand} layout, with
    the commutativity layer preserved.  Validated by the checker in the
    test suite at the claimed bound [2^-(53 n - n - 2)]. *)

val all : (string * Network.t) list
(** Every named network, for tooling. *)
