let render (net : Network.t) =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph %s {\n  rankdir=LR;\n  node [fontname=monospace];\n" net.name;
  (* last producer of each wire: Input i or Gate g *)
  let producer = Array.make net.num_wires "" in
  Array.iteri
    (fun i w ->
      let id = Printf.sprintf "in%d" i in
      pr "  %s [label=\"in%d\" shape=plaintext];\n" id i;
      producer.(w) <- id)
    net.inputs;
  Array.iteri
    (fun gi (g : Network.gate) ->
      let id = Printf.sprintf "g%d" gi in
      let label, shape =
        match g.kind with
        | Network.Add -> ("+", "circle")
        | Network.Two_sum -> "TwoSum", "box"
        | Network.Fast_two_sum -> "Fast\\nTwoSum", "box"
      in
      pr "  %s [label=\"%s\" shape=%s];\n" id label shape;
      if producer.(g.top) <> "" then pr "  %s -> %s [label=\"w%d\"];\n" producer.(g.top) id g.top;
      if producer.(g.bot) <> "" then pr "  %s -> %s [label=\"w%d\"];\n" producer.(g.bot) id g.bot;
      producer.(g.top) <- id;
      producer.(g.bot) <- (match g.kind with Network.Add -> "" | _ -> id))
    net.gates;
  Array.iteri
    (fun i w ->
      let id = Printf.sprintf "out%d" i in
      pr "  %s [label=\"z%d\" shape=plaintext];\n" id i;
      if producer.(w) <> "" then pr "  %s -> %s [label=\"w%d\"];\n" producer.(w) id w)
    net.outputs;
  pr "}\n";
  Buffer.contents buf
