(** Random and adversarial generators of nonoverlapping floating-point
    expansions, used by the checker and the test suites.

    FPANs exhibit a different rounding-error pattern for every
    permutation of the signs and magnitudes of their inputs (Section 1
    of the paper), so the generators emphasize exactly the structures
    that break naive networks: massive cancellation between the two
    operands, ties at the half-ulp boundary, interleaved zeros, powers
    of two, and maximal/minimal gaps between adjacent terms. *)

type rng = Random.State.t

val expansion : rng -> n:int -> ?e0_min:int -> ?e0_max:int -> unit -> float array
(** A random nonoverlapping [n]-term expansion whose leading exponent is
    drawn from [e0_min, e0_max] (defaults -80..80).  Adjacent gaps,
    signs, tie boundaries, and zero tails are all exercised. *)

val pair : rng -> n:int -> ?e0_min:int -> ?e0_max:int -> unit -> float array * float array
(** An adversarial pair [(x, y)] of [n]-term expansions: independently
    random, or built to cancel against each other to a random depth, or
    sharing exponents term by term. *)

val interleave : float array -> float array -> float array
(** [interleave x y] is [[|x0; y0; x1; y1; ...|]] — the input order of
    the addition networks (Eq. 10 of the paper). *)
