type result = {
  candidates : int;
  battery_survivors : int;
  verified_correct : Network.t list;
}

(* The 36 possible gates on 4 wires: kind x ordered (top, bot) pair. *)
let all_gates =
  let kinds = [ Network.Add; Network.Two_sum; Network.Fast_two_sum ] in
  let gates = ref [] in
  List.iter
    (fun kind ->
      for top = 0 to 3 do
        for bot = 0 to 3 do
          if top <> bot then gates := { Network.kind; top; bot } :: !gates
        done
      done)
    kinds;
  Array.of_list (List.rev !gates)

(* Battery of adversarial inputs (x0, y0, x1, y1): cancellation at both
   levels, half-ulp ties, zeros, sign mixes.  Expected outputs are the
   correctly rounded 2-term expansions computed with the exact oracle. *)
let battery =
  let u = Float.ldexp 1.0 (-53) in
  [| [| 1.0; 0.5; u *. 0.5; u *. 0.25 |];
     [| 1.0; -1.0 +. (u *. 2.0); u *. 0.5; -.u *. 0.25 |];
     [| 1.0; 1.0; u; u |];
     [| 1.5; -0.75; -.u; u *. 0.75 |];
     [| 1.0; -2.0; u *. 0.5; u |];
     [| Float.pi; Float.exp 1.0; u *. 0.3; -.u *. 0.6 |];
     [| 1.0; 0.0; u *. 0.5; 0.0 |];
     [| -1.0; 1.0 -. u; -.u *. 0.5; u *. 0.25 |];
     [| 3.0; 5.0; u *. 2.0; -.u *. 3.0 |];
     [| 1.0 +. (2.0 *. u); -1.0; u; -.u *. 0.5 |] |]

let n_battery = Array.length battery

(* Expected nonoverlapping 2-term results, via the exact oracle:
   z0 = RNE(S), z1 = RNE(S - z0). *)
let expected =
  Array.map
    (fun inp ->
      let s = Exact.sum_floats inp in
      let z0 = Exact.approx (Exact.compress s) in
      let rest = Exact.grow s (-.z0) in
      let z1 = Exact.approx (Exact.compress rest) in
      (z0, z1))
    battery

(* Precise double-double closeness, used only after the quick filters. *)
let close_dd z0 z1 (e0, e1) =
  let s, r = Eft.two_sum z0 z1 in
  let es, er = Eft.two_sum e0 e1 in
  let d = Float.abs (s -. es +. (r -. er)) in
  d <= Float.abs es *. Float.ldexp 1.0 (-100) || (es = 0.0 && d = 0.0)

(* All ordered output pairs. *)
let out_pairs =
  let ps = ref [] in
  for i = 0 to 3 do
    for j = 0 to 3 do
      if i <> j then ps := (i, j) :: !ps
    done
  done;
  Array.of_list (List.rev !ps)

let search_size ~size ?(checker_cases = 200_000) ?(seed = 424242) () =
  let n36 = Array.length all_gates in
  (* Depth-first enumeration with the wire states of the current gate
     PREFIX cached per depth (the dominant cost would otherwise be
     re-simulating the whole candidate for every odometer tick). *)
  let states = Array.init (size + 1) (fun _ -> Array.make_matrix n_battery 4 0.0) in
  for b = 0 to n_battery - 1 do
    Array.blit battery.(b) 0 states.(0).(b) 0 4
  done;
  let chosen = Array.make size 0 in
  let candidates = ref 0 in
  let survivors = ref 0 in
  let verified = ref [] in
  (* Quick per-input scale for the coarse closeness filter. *)
  let esum = Array.map (fun (e0, e1) -> e0 +. e1) expected in
  let coarse = Array.map (fun s -> Float.abs s *. Float.ldexp 1.0 (-40)) esum in
  let check_candidate depth_state =
    incr candidates;
    (* A surviving output pair must pass nonoverlap + closeness on
       every battery input; check input-major with live-pair pruning,
       everything in plain float compares. *)
    let alive = Array.make 12 true in
    let n_alive = ref 12 in
    let b = ref 0 in
    while !n_alive > 0 && !b < n_battery do
      let w = depth_state.(!b) in
      let es = esum.(!b) and tol = coarse.(!b) in
      for p = 0 to 11 do
        if alive.(p) then begin
          let i, j = out_pairs.(p) in
          let z0 = w.(i) and z1 = w.(j) in
          (* coarse: sum matches to ~40 bits and magnitudes ordered *)
          if
            Float.abs (z0 +. z1 -. es) > tol
            || (z1 <> 0.0 && Float.abs z1 > Float.abs z0 *. Float.ldexp 1.0 (-52))
            || not (Eft.is_nonoverlapping z0 z1 && close_dd z0 z1 expected.(!b))
          then begin
            alive.(p) <- false;
            decr n_alive
          end
        end
      done;
      incr b
    done;
    if !n_alive > 0 then begin
      incr survivors;
      Array.iteri
        (fun p ok ->
          if ok then begin
            let i, j = out_pairs.(p) in
            let gates = List.init size (fun g -> all_gates.(chosen.(g))) in
            let net =
              Network.make
                ~name:(Printf.sprintf "enum%d-%d" size p)
                ~num_wires:4 ~inputs:[| 0; 1; 2; 3 |] ~gates ~outputs:[| i; j |] ~error_exp:105
            in
            (* staged: a cheap screen kills almost every battery
               survivor before the expensive full run *)
            let screen = Checker.check_add net ~terms:2 ~cases:1500 ~seed in
            if Checker.passed screen then begin
              let report = Checker.check_add net ~terms:2 ~cases:checker_cases ~seed:(seed + 1) in
              if Checker.passed report then verified := net :: !verified
            end
          end)
        alive
    end
  in
  let rec go depth =
    if depth = size then check_candidate states.(depth)
    else begin
      let src = states.(depth) and dst = states.(depth + 1) in
      for gi = 0 to n36 - 1 do
        chosen.(depth) <- gi;
        let gate = all_gates.(gi) in
        let top = gate.Network.top and bot = gate.Network.bot in
        (match gate.Network.kind with
        | Network.Add ->
            for b = 0 to n_battery - 1 do
              let w = src.(b) and o = dst.(b) in
              o.(0) <- w.(0);
              o.(1) <- w.(1);
              o.(2) <- w.(2);
              o.(3) <- w.(3);
              o.(top) <- w.(top) +. w.(bot);
              o.(bot) <- 0.0
            done
        | Network.Two_sum ->
            for b = 0 to n_battery - 1 do
              let w = src.(b) and o = dst.(b) in
              o.(0) <- w.(0);
              o.(1) <- w.(1);
              o.(2) <- w.(2);
              o.(3) <- w.(3);
              let x = w.(top) and y = w.(bot) in
              let s = x +. y in
              let x' = s -. y in
              let y' = s -. x' in
              o.(top) <- s;
              o.(bot) <- x -. x' +. (y -. y')
            done
        | Network.Fast_two_sum ->
            for b = 0 to n_battery - 1 do
              let w = src.(b) and o = dst.(b) in
              o.(0) <- w.(0);
              o.(1) <- w.(1);
              o.(2) <- w.(2);
              o.(3) <- w.(3);
              let x = w.(top) and y = w.(bot) in
              let s = x +. y in
              o.(top) <- s;
              o.(bot) <- y -. (s -. x)
            done);
        go (depth + 1)
      done
    end
  in
  go 0;
  { candidates = !candidates; battery_survivors = !survivors; verified_correct = List.rev !verified }

(* Straight-line evaluation of a small gate sequence on 4 wires. *)
let run_candidate gates n_gates wires inp =
  Array.blit inp 0 wires 0 4;
  for g = 0 to n_gates - 1 do
    let gate : Network.gate = gates.(g) in
    let x = wires.(gate.top) and y = wires.(gate.bot) in
    match gate.kind with
    | Network.Add ->
        wires.(gate.top) <- x +. y;
        wires.(gate.bot) <- 0.0
    | Network.Two_sum ->
        let s, e = Eft.two_sum x y in
        wires.(gate.top) <- s;
        wires.(gate.bot) <- e
    | Network.Fast_two_sum ->
        let s, e = Eft.fast_two_sum x y in
        wires.(gate.top) <- s;
        wires.(gate.bot) <- e
  done

(* The same lower-bound enumeration for 2-term MULTIPLICATION
   (Figure 5, size 3): candidates consume the mul_expand 2 layout
   [p00; p01; p10; e00] and must meet nonoverlap + 2^-103 |xy| on a
   battery of expansion products, then the full checker. *)
let mul_battery =
  let rng = Random.State.make [| 0xabcdE; 7 |] in
  Array.init 14 (fun i ->
      let x, y =
        if i = 0 then ([| 1.0; Float.ldexp 1.0 (-53) |], [| 1.0; -.Float.ldexp 1.0 (-53) |])
        else if i = 1 then ([| 1.0; Float.ldexp 1.0 (-53) |], [| -1.0; Float.ldexp 1.0 (-53) |])
        else Gen.pair rng ~n:2 ~e0_min:(-30) ~e0_max:30 ()
      in
      (x, y))

let search_mul2_size ~size ?(checker_cases = 400_000) ?(seed = 513) () =
  let n36 = Array.length all_gates in
  let inputs = Array.map (fun (x, y) -> Networks.mul_expand 2 x y) mul_battery in
  let refs =
    Array.map (fun (x, y) -> Exact.mul (Exact.sum_floats x) (Exact.sum_floats y)) mul_battery
  in
  let expected =
    Array.map
      (fun r ->
        let z0 = Exact.approx (Exact.compress r) in
        let z1 = Exact.approx (Exact.compress (Exact.grow r (-.z0))) in
        (z0, z1))
      refs
  in
  let gates = Array.make (max size 1) all_gates.(0) in
  let idx = Array.make (max size 1) 0 in
  let wires = Array.make 4 0.0 in
  let candidates = ref 0 in
  let survivors = ref 0 in
  let verified = ref [] in
  let continue = ref true in
  while !continue do
    incr candidates;
    for g = 0 to size - 1 do
      gates.(g) <- all_gates.(idx.(g))
    done;
    let alive = Array.make 12 true in
    let n_alive = ref 12 in
    let b = ref 0 in
    while !n_alive > 0 && !b < Array.length mul_battery do
      run_candidate gates size wires inputs.(!b);
      for p = 0 to 11 do
        if alive.(p) then begin
          let i, j = out_pairs.(p) in
          let z0 = wires.(i) and z1 = wires.(j) in
          if not (Eft.is_nonoverlapping z0 z1 && close_dd z0 z1 expected.(!b)) then begin
            alive.(p) <- false;
            decr n_alive
          end
        end
      done;
      incr b
    done;
    if !n_alive > 0 then begin
      incr survivors;
      Array.iteri
        (fun p ok ->
          if ok then begin
            let i, j = out_pairs.(p) in
            let net =
              Network.make
                ~name:(Printf.sprintf "mulenum%d-%d" size p)
                ~num_wires:4 ~inputs:[| 0; 1; 2; 3 |] ~gates:(Array.to_list (Array.sub gates 0 size))
                ~outputs:[| i; j |] ~error_exp:103
            in
            let screen =
              Checker.check_mul net ~terms:2 ~expand:(Networks.mul_expand 2) ~cases:1500 ~seed
            in
            if Checker.passed screen then begin
              let report =
                Checker.check_mul net ~terms:2 ~expand:(Networks.mul_expand 2) ~cases:checker_cases
                  ~seed:(seed + 1)
              in
              if Checker.passed report then verified := net :: !verified
            end
          end)
        alive
    end;
    let rec bump g =
      if g < 0 then continue := false
      else if idx.(g) = n36 - 1 then begin
        idx.(g) <- 0;
        bump (g - 1)
      end
      else idx.(g) <- idx.(g) + 1
    in
    if size = 0 then continue := false else bump (size - 1)
  done;
  { candidates = !candidates; battery_survivors = !survivors; verified_correct = List.rev !verified }

let pp_result ppf r =
  Format.fprintf ppf "%d candidates, %d battery survivors, %d fully verified" r.candidates
    r.battery_survivors
    (List.length r.verified_correct)
