(** Randomized verification of FPAN correctness properties.

    The paper verifies its networks with an SMT-based procedure [53];
    no SMT solver is available in this environment, so this module
    provides the substituted verifier described in DESIGN.md: it checks
    the same two correctness conditions of Section 3 —

    + the output expansion is nonoverlapping (Eq. 8), and
    + the exact sum of all discarded error terms is bounded by
      [2^-q * |exact input sum|] —

    on large batches of random and adversarial inputs, using the
    {!Exact} oracle so that both conditions are evaluated without any
    rounding.  It additionally checks that every FastTwoSum gate was
    exact (its ordering precondition is a proof obligation the SMT
    verifier would discharge statically). *)

type failure =
  | Overlapping_output
  | Error_bound_exceeded
  | Inexact_fast_two_sum

type counterexample = {
  inputs : float array;
  outputs : float array;
  failure : failure;
}

type report = {
  cases_run : int;
  failure_count : int;
  failures : counterexample list;  (** at most 10 retained *)
  worst_error_log2 : float;
      (** max over all cases of [log2 (|discarded sum| / |input sum|)];
          [neg_infinity] when every case was exact *)
}

val passed : report -> bool

val check_outputs : Network.t -> inputs:float array -> counterexample option
(** Check one concrete input vector against both correctness
    conditions. *)

val check_add : Network.t -> terms:int -> cases:int -> seed:int -> report
(** Drive an addition network with random adversarial pairs of
    nonoverlapping [terms]-term expansions (inputs interleaved
    x0,y0,x1,y1,...). *)

val check_mul :
  Network.t ->
  terms:int ->
  expand:(float array -> float array -> float array) ->
  cases:int ->
  seed:int ->
  report
(** Drive a multiplication network: [expand x y] performs the TwoProd
    expansion step and returns the network inputs; the error bound is
    checked against the exact product [x * y] (so it accounts for the
    product terms the expansion step itself discards). *)

val check_sum_against :
  Network.t -> reference:Exact.t -> inputs:float array -> outputs:float array -> counterexample option
(** Lower-level entry: check [outputs] of a run on [inputs] against an
    arbitrary exact [reference] value (used by [check_mul]). *)

val pp_report : Format.formatter -> report -> unit
