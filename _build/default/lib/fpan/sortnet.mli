(** Sorting networks — the structural cousins of FPANs (Section 6).

    "FPANs are closely related to sorting networks ... both are
    branch-free algorithms that sort or accumulate a fixed number of
    inputs by performing pairwise operations in a data-parallel
    fashion.  ... there may exist an analogue of the 0-1 principle."

    This module makes the analogy concrete: comparator networks with
    the same size/depth notions as {!Network}, Batcher's odd-even
    mergesort and the odd-even transposition sort as constructions,
    verification by the 0-1 principle (exhaustive boolean inputs), and
    a magnitude-sorting application that turns CAMPARY's branchy merge
    step into a fixed comparator schedule. *)

type t = {
  wires : int;
  comparators : (int * int) array;
      (** [(lo, hi)]: after the comparator, the smaller value sits on
          [lo] and the larger on [hi] *)
}

val size : t -> int
val depth : t -> int
(** Comparators on the longest wire-path, as for FPANs. *)

val batcher : int -> t
(** Batcher's odd-even mergesort network for [n] inputs ([n] rounded up
    to a power of two internally; out-of-range comparators dropped).
    Size O(n log^2 n). *)

val transposition : int -> t
(** Odd-even transposition sort: [n] rounds of adjacent comparators,
    size O(n^2), depth [n].  The simple reference construction. *)

val sort : t -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** Apply the network in place. *)

val sort_floats_by_magnitude : t -> float array -> unit
(** Apply the network with decreasing-|.| comparators — the fixed
    schedule replacing the data-dependent merge in certified expansion
    addition. *)

val verify_01 : t -> bool
(** The 0-1 principle: a comparator network sorts all inputs iff it
    sorts every boolean input.  Exhaustive over [2^wires] cases
    ([wires <= 24] enforced). *)
