(** Graphviz rendering of FPANs, mirroring the paper's wire/gate
    diagrams (inputs on the left, gates in sequence, outputs on the
    right). *)

val render : Network.t -> string
(** A [dot] digraph: one node per gate, edges follow data flow along
    wires. *)
