type input_kind =
  | Add_inputs of int
  | Mul_inputs of int

type report = {
  wire_exponents : int array;
  discarded_exponents : int list;
  discarded_total_exponent : int;
  fast_two_sum_gates : int;
}

(* Exponent bound of "certainly zero". *)
let bottom = min_int / 2

(* Exponent upper bounds of the network inputs, relative to the leading
   input's exponent, from the nonoverlapping invariant. *)
let input_bounds kind =
  match kind with
  | Add_inputs n ->
      (* x0,y0,x1,y1,...: |x_i| <= ulp(x_{i-1})/2 gives e_i <= e0 - 53 i. *)
      Array.init (2 * n) (fun k -> -53 * (k / 2))
  | Mul_inputs n ->
      (* mul_expand layout: p00, then per ascending order o the products
         of order o followed by the error terms of the TwoProds of
         order o-1.  exponent(p, order o) <= 1 - 54 o;
         exponent(err of order o-1 TwoProd) <= 1 - 54 (o-1) - 53. *)
      let bounds = ref [ 0 ] in
      for o = 1 to n - 1 do
        let products = if o <= n - 1 then o + 1 else 0 in
        for _ = 1 to products do
          bounds := (1 - (54 * o)) :: !bounds
        done;
        let errors = if o - 1 <= n - 2 then o else 0 in
        for _ = 1 to errors do
          bounds := (1 - (54 * (o - 1)) - 53) :: !bounds
        done
      done;
      Array.of_list (List.rev !bounds)

let ceil_log2 k =
  let rec go acc v = if v >= k then acc else go (acc + 1) (2 * v) in
  if k <= 1 then 0 else go 0 1

let analyze (net : Network.t) kind =
  let bounds = input_bounds kind in
  assert (Array.length bounds = Array.length net.inputs);
  let e = Array.make net.num_wires bottom in
  Array.iteri (fun i w -> e.(w) <- bounds.(i)) net.inputs;
  let discarded = ref [] in
  let fts = ref 0 in
  Array.iter
    (fun (g : Network.gate) ->
      let m = max e.(g.top) e.(g.bot) in
      let sum_bound = if m = bottom then bottom else m + 1 in
      let err_bound = if m = bottom then bottom else m + 1 - 53 in
      match g.kind with
      | Network.Add ->
          if err_bound > bottom then discarded := err_bound :: !discarded;
          e.(g.top) <- sum_bound;
          e.(g.bot) <- bottom
      | Network.Two_sum ->
          e.(g.top) <- sum_bound;
          e.(g.bot) <- err_bound
      | Network.Fast_two_sum ->
          incr fts;
          e.(g.top) <- sum_bound;
          e.(g.bot) <- err_bound)
    net.gates;
  let total =
    match !discarded with
    | [] -> bottom
    | ds -> List.fold_left max bottom ds + ceil_log2 (List.length ds)
  in
  {
    wire_exponents = e;
    discarded_exponents = List.rev !discarded;
    discarded_total_exponent = total;
    fast_two_sum_gates = !fts;
  }

let certifies net kind ~slack =
  let r = analyze net kind in
  r.discarded_total_exponent <= -net.Network.error_exp - slack

let pp ppf r =
  Format.fprintf ppf "@[<v>discarded bounds (rel. to e0):";
  List.iter (fun d -> Format.fprintf ppf " 2^%d" d) r.discarded_exponents;
  Format.fprintf ppf "@,total discarded <= 2^%d; %d FastTwoSum gates checked dynamically@]"
    r.discarded_total_exponent r.fast_two_sum_gates
