type t = {
  wires : int;
  comparators : (int * int) array;
}

let size t = Array.length t.comparators

let depth t =
  let d = Array.make t.wires 0 in
  Array.fold_left
    (fun acc (i, j) ->
      let here = 1 + max d.(i) d.(j) in
      d.(i) <- here;
      d.(j) <- here;
      max acc here)
    0 t.comparators

(* Batcher's odd-even mergesort, defined for powers of two; comparators
   touching padding wires (>= n) are dropped, which preserves
   correctness because padding can be taken as +infinity. *)
let batcher n =
  assert (n >= 1);
  let pow2 = ref 1 in
  while !pow2 < n do
    pow2 := !pow2 * 2
  done;
  let acc = ref [] in
  let add i j = if i < n && j < n then acc := (i, j) :: !acc in
  let rec merge lo cnt r =
    let step = r * 2 in
    if step < cnt then begin
      merge lo cnt step;
      merge (lo + r) cnt step;
      let i = ref (lo + r) in
      while !i + r < lo + cnt do
        add !i (!i + r);
        i := !i + step
      done
    end
    else add lo (lo + r)
  in
  let rec sort lo cnt =
    if cnt > 1 then begin
      let m = cnt / 2 in
      sort lo m;
      sort (lo + m) m;
      merge lo cnt 1
    end
  in
  sort 0 !pow2;
  { wires = n; comparators = Array.of_list (List.rev !acc) }

let transposition n =
  assert (n >= 1);
  let acc = ref [] in
  for round = 0 to n - 1 do
    let start = round land 1 in
    let i = ref start in
    while !i + 1 < n do
      acc := (!i, !i + 1) :: !acc;
      i := !i + 2
    done
  done;
  { wires = n; comparators = Array.of_list (List.rev !acc) }

let sort t ~cmp v =
  assert (Array.length v = t.wires);
  Array.iter
    (fun (i, j) ->
      if cmp v.(i) v.(j) > 0 then begin
        let tmp = v.(i) in
        v.(i) <- v.(j);
        v.(j) <- tmp
      end)
    t.comparators

let sort_floats_by_magnitude t v =
  (* Decreasing magnitude: wire [lo] keeps the LARGER |.|, matching the
     merge order expansion addition needs. *)
  assert (Array.length v = t.wires);
  Array.iter
    (fun (i, j) ->
      let a = v.(i) and b = v.(j) in
      if Float.abs a < Float.abs b then begin
        v.(i) <- b;
        v.(j) <- a
      end)
    t.comparators

let verify_01 t =
  assert (t.wires <= 24);
  let n = t.wires in
  let ok = ref true in
  let v = Array.make n 0 in
  let total = 1 lsl n in
  let mask = ref 0 in
  while !ok && !mask < total do
    for i = 0 to n - 1 do
      v.(i) <- (!mask lsr i) land 1
    done;
    sort t ~cmp:Stdlib.compare v;
    for i = 0 to n - 2 do
      if v.(i) > v.(i + 1) then ok := false
    done;
    incr mask
  done;
  !ok
