(** Heuristic search over the space of FPANs.

    Reproduces the discovery methodology of Section 4.1: starting from a
    network that passes verification, gates are randomly inserted,
    removed, retyped, and reordered, with the probability of removal
    rising over time, subject to the constraint that the mutated network
    still passes the (randomized) checker.  The objective minimizes size
    first and depth second. *)

val anneal :
  seed:int -> steps:int -> terms:int -> is_mul:bool -> ?quick_cases:int -> Network.t -> Network.t
(** [anneal ~seed ~steps ~terms ~is_mul net] returns the smallest network
    found that still passes [quick_cases] (default 2000) adversarial
    checker cases at every step, revalidated with 500x the cases at the
    end; if the final revalidation fails the original network is
    returned.  Even the strengthened revalidation is testing, not
    proof: treat accepted candidates as conjectures (EXPERIMENTS.md
    records one that survived 24k cases and failed at 3M). *)

val grow_from_empty :
  seed:int -> terms:int -> attempts:int -> ?quick_cases:int -> unit -> Network.t option
(** The discovery phase of Section 4.1: grow random (mostly TwoSum)
    gates from an empty network until one passes the checker; the
    result can then be fed to {!anneal} for minimization.  [None] if no
    passing network appears within [attempts] random growths. *)

val mutate : Random.State.t -> Network.t -> Network.t
(** One random structural mutation (exposed for testing). *)
