type kind =
  | Add
  | Two_sum
  | Fast_two_sum

type gate = { kind : kind; top : int; bot : int }

type t = {
  name : string;
  num_wires : int;
  inputs : int array;
  gates : gate array;
  outputs : int array;
  error_exp : int;
}

let make ~name ~num_wires ~inputs ~gates ~outputs ~error_exp =
  let check_wire w = assert (w >= 0 && w < num_wires) in
  Array.iter check_wire inputs;
  Array.iter check_wire outputs;
  List.iter
    (fun g ->
      check_wire g.top;
      check_wire g.bot;
      assert (g.top <> g.bot))
    gates;
  { name; num_wires; inputs; gates = Array.of_list gates; outputs; error_exp }

let size t = Array.length t.gates

let depth t =
  (* Per-wire running depth; a gate's depth is one past the deeper of its
     two operand wires.  An Add gate kills the bottom wire. *)
  let d = Array.make t.num_wires 0 in
  Array.iter
    (fun g ->
      let here = 1 + max d.(g.top) d.(g.bot) in
      d.(g.top) <- here;
      d.(g.bot) <- (match g.kind with Add -> 0 | Two_sum | Fast_two_sum -> here))
    t.gates;
  Array.fold_left (fun acc w -> max acc d.(w)) 0 t.outputs

let flops t =
  Array.fold_left
    (fun acc g -> acc + match g.kind with Add -> 1 | Two_sum -> 6 | Fast_two_sum -> 3)
    0 t.gates

let gate_counts t =
  Array.fold_left
    (fun (a, s, f) g ->
      match g.kind with
      | Add -> (a + 1, s, f)
      | Two_sum -> (a, s + 1, f)
      | Fast_two_sum -> (a, s, f + 1))
    (0, 0, 0) t.gates

let pp ppf t =
  let kind_name = function Add -> "add" | Two_sum -> "two_sum" | Fast_two_sum -> "fast_two_sum" in
  Format.fprintf ppf "@[<v>network %s: %d wires, %d gates, depth %d, %d flops, 2^-%d@," t.name
    t.num_wires (size t) (depth t) (flops t) t.error_exp;
  Format.fprintf ppf "inputs:";
  Array.iter (fun w -> Format.fprintf ppf " w%d" w) t.inputs;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun i g -> Format.fprintf ppf "  g%-3d %-13s w%d w%d@," i (kind_name g.kind) g.top g.bot)
    t.gates;
  Format.fprintf ppf "outputs:";
  Array.iter (fun w -> Format.fprintf ppf " w%d" w) t.outputs;
  Format.fprintf ppf "@]"
