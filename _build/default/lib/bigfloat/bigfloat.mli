(** Arbitrary-precision binary floating point with correct rounding
    (round-to-nearest-even), built on software big integers.

    This is the repository's stand-in for the MPFR/GMP/FLINT class of
    libraries the paper benchmarks against (Section 2.2, "Software FPU
    emulation"): every operation goes through mantissa alignment,
    normalization, and rounding implemented in software on limb arrays,
    with the attendant branching and allocation — exactly the
    architecture whose performance the FPAN approach beats.  It also
    serves as the reference for decimal conversions and for accuracy
    tests of division and square root.

    Precision is per-value; binary operations round to the precision of
    their left operand.  Exponents are unbounded OCaml ints, so there is
    no overflow or underflow. *)

module Bignat : module type of Bignat
(** The big-integer limb layer, re-exported for tests and tools. *)

type t

val make_zero : prec:int -> t
val of_float : prec:int -> float -> t
(** Exact (doubles carry at most 53 mantissa bits). *)

val of_int : prec:int -> int -> t
val to_float : t -> float
(** Correctly rounded to binary64. *)

val prec : t -> int
val is_zero : t -> bool
val is_nan : t -> bool
val is_inf : t -> bool
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val sqrt : t -> t

val ulp_bound : t -> t
(** [2^(exponent t - prec + 1)]: one unit in the last place of [t], an
    upper bound on the rounding error of the operation that produced
    it.  Used by interval layers. *)

val fma : t -> t -> t -> t
(** Correctly-rounded fused multiply-add [a*b + c] (a single rounding,
    to [a]'s precision). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val round_to : prec:int -> t -> t
(** Re-round to a different precision. *)

(** {2 Directed rounding}

    The default operations round to nearest-even; these variants round
    in a chosen direction (the MPFR rounding-mode surface).  Addition,
    subtraction, and multiplication are correctly rounded in the
    requested direction; division and square root are faithfully
    rounded with a 64-bit guard. *)

type rounding =
  | Nearest_even
  | Toward_zero
  | Upward
  | Downward

val add_mode : rounding -> t -> t -> t
val sub_mode : rounding -> t -> t -> t
val mul_mode : rounding -> t -> t -> t
val div_mode : rounding -> t -> t -> t
val sqrt_mode : rounding -> t -> t

val of_expansion : prec:int -> float array -> t
(** Exact sum of the floats (use a precision large enough to hold it;
    rounding applies otherwise). *)

val to_expansion : n:int -> t -> float array
(** The first [n] terms of the nonoverlapping expansion of the value
    (Eq. 6 of the paper). *)

val of_string : prec:int -> string -> t
(** Correctly rounded decimal-to-binary conversion. *)

val to_string : ?digits:int -> t -> string
(** Scientific notation; default digit count matches the precision. *)

val pp : Format.formatter -> t -> unit

(** {2 Transcendental functions}

    Series/Newton implementations with guard bits, completing the
    MPFR-class interface and providing an independent cross-check for
    the MultiFloat elementary functions (the two implementations share
    no code).  Results are accurate to within a few ulps of the target
    precision. *)

val ln2 : prec:int -> t
val pi : prec:int -> t
val exp : t -> t
val log : t -> t
val sin : t -> t
val cos : t -> t
val sin_cos : t -> t * t
val atan : t -> t
