(* Little-endian 24-bit-limb naturals.  All functions allocate fresh
   arrays; normalization strips trailing zero limbs so that structural
   equality coincides with numeric equality. *)

let limb_bits = 24
let limb_mask = (1 lsl limb_bits) - 1

type t = int array

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero = [||]
let is_zero a = Array.length a = 0

let of_int n =
  assert (n >= 0);
  let rec limbs n = if n = 0 then [] else (n land limb_mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let one = of_int 1

let to_int_opt a =
  let bits = Array.length a * limb_bits in
  if bits <= 62 then begin
    let v = ref 0 in
    for i = Array.length a - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.(i)
    done;
    Some !v
  end
  else begin
    (* May still fit if the high limbs are small. *)
    let v = ref 0 in
    let ok = ref true in
    for i = Array.length a - 1 downto 0 do
      if !v > (max_int - a.(i)) lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor a.(i)
    done;
    if !ok then Some !v else None
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub a b =
  let la = Array.length a and lb = Array.length b in
  assert (compare a b >= 0);
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + limb_mask + 1;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        (* r.(i+j) < 2^24, a.(i)*b.(j) < 2^48, carry < 2^39: fits. *)
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let mul_small a m =
  assert (m >= 0 && m < 1 lsl 38);
  if m = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 3) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s land limb_mask;
      carry := s lsr limb_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land limb_mask;
      carry := !carry lsr limb_bits;
      incr k
    done;
    normalize r
  end

let add_small a m = add a (of_int m)

let divmod_small a d =
  assert (d > 0 && d <= limb_mask);
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

let bit_length a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n = if n = 0 then 0 else 1 + width (n lsr 1) in
    ((la - 1) * limb_bits) + width top
  end

let test_bit a k =
  let limb = k / limb_bits and off = k mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let any_bit_below a k =
  let full = k / limb_bits and off = k mod limb_bits in
  let la = Array.length a in
  let rec check i = i < min full la && (a.(i) <> 0 || check (i + 1)) in
  check 0 || (full < la && off > 0 && a.(full) land ((1 lsl off) - 1) <> 0)

let shift_left a k =
  if is_zero a || k = 0 then if k = 0 then a else a
  else begin
    let limbs = k / limb_bits and off = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      if off > 0 then r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right a k =
  if k = 0 then a
  else begin
    let limbs = k / limb_bits and off = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi = if off > 0 && i + limbs + 1 < la then a.(i + limbs + 1) lsl (limb_bits - off) else 0 in
        r.(i) <- (lo lor hi) land limb_mask
      done;
      normalize r
    end
  end

let extract_bits x lo width =
  let shifted = shift_right x lo in
  let keep_limbs = ((width + limb_bits - 1) / limb_bits) + 1 in
  let la = Array.length shifted in
  let r = Array.make (min la keep_limbs) 0 in
  Array.blit shifted 0 r 0 (Array.length r);
  let drop = (Array.length r * limb_bits) - width in
  let r =
    if drop <= 0 then r
    else begin
      (* Mask off the bits above [width]. *)
      let full = width / limb_bits and off = width mod limb_bits in
      Array.mapi
        (fun i v -> if i < full then v else if i = full then v land ((1 lsl off) - 1) else 0)
        r
    end
  in
  normalize r

(* Schoolbook binary long division: O(bits) shift-compare-subtract
   steps.  Asymptotically naive but entirely adequate for the few
   hundred bits this library runs at; speed here is also beside the
   point, since Bigfloat is the deliberately slow software-FPU
   baseline. *)
let divmod a b =
  assert (not (is_zero b));
  let c = compare a b in
  if c < 0 then (zero, a)
  else begin
    let shift = bit_length a - bit_length b in
    let q = Array.make ((shift / limb_bits) + 1) 0 in
    let rem = ref a in
    for k = shift downto 0 do
      let d = shift_left b k in
      if compare !rem d >= 0 then begin
        rem := sub !rem d;
        q.(k / limb_bits) <- q.(k / limb_bits) lor (1 lsl (k mod limb_bits))
      end
    done;
    (normalize q, !rem)
  end

(* Digit-by-digit (binary) integer square root. *)
let isqrt_rem x =
  if is_zero x then (zero, zero)
  else begin
    let bits = bit_length x in
    let s = ref zero in
    let r = ref x in
    let k0 = (bits - 1) / 2 in
    for k = k0 downto 0 do
      (* Try setting bit k of s: need r >= (2s + 2^k) * 2^k. *)
      let cand = add (shift_left !s (k + 1)) (shift_left one (2 * k)) in
      if compare !r cand >= 0 then begin
        r := sub !r cand;
        s := add !s (shift_left one k)
      end
    done;
    (!s, !r)
  end

let pow5 k =
  assert (k >= 0);
  let rec go acc k = if k = 0 then acc else go (mul_small acc 5) (k - 1) in
  go one k

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a =
      if not (is_zero a) then begin
        let q, r = divmod_small a 10 in
        go q;
        Buffer.add_char buf (Char.chr (r + Char.code '0'))
      end
    in
    go a;
    Buffer.contents buf
  end

let of_decimal_string s =
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add_small (mul_small !acc 10) (Char.code c - Char.code '0')
      | _ -> invalid_arg (Printf.sprintf "Bignat.of_decimal_string: %S" s))
    s;
  !acc
