(* Correctly-rounded software floating point.

   A finite nonzero value is sign * mant * 2^exp with [mant] an integer
   of exactly [prec] bits (normalized: its top bit is set).  All
   operations compute an exact or sticky-augmented integer result and
   round once with round-to-nearest-even. *)

module Bignat = Bignat

type kind =
  | Zero
  | Finite
  | Inf
  | Nan

type t = {
  kind : kind;
  sign : int; (* +1 or -1; +1 for Zero/Nan *)
  exp : int; (* exponent of the mantissa's least significant bit *)
  mant : Bignat.t;
  prec : int;
}

let make_zero ~prec = { kind = Zero; sign = 1; exp = 0; mant = Bignat.zero; prec }
let make_nan ~prec = { kind = Nan; sign = 1; exp = 0; mant = Bignat.zero; prec }
let make_inf ~prec s = { kind = Inf; sign = s; exp = 0; mant = Bignat.zero; prec }

let prec t = t.prec
let is_zero t = t.kind = Zero
let is_nan t = t.kind = Nan
let is_inf t = t.kind = Inf
let sign t = match t.kind with Zero -> 0 | Nan -> 0 | Inf | Finite -> t.sign

type rounding =
  | Nearest_even
  | Toward_zero
  | Upward
  | Downward

(* Round an exact integer value [m * 2^e] (plus an optional sticky bit
   representing a nonzero tail strictly below the lsb of m) to [prec]
   bits, in the requested direction (round-to-nearest-even by
   default). *)
let round_mant ?(mode = Nearest_even) ~prec ~sign ?(sticky = false) m e =
  if Bignat.is_zero m then
    if sticky then
      (* A pure sticky with no mantissa cannot happen in our call sites. *)
      assert false
    else { kind = Zero; sign = 1; exp = 0; mant = Bignat.zero; prec }
  else begin
    let b = Bignat.bit_length m in
    if b <= prec then begin
      (* Exact: widen to the normalized form.  The sticky bit, if any,
         sits infinitely far below and cannot affect RNE unless we are
         exactly on a boundary, which a representable value never is. *)
      let shift = prec - b in
      { kind = Finite; sign; exp = e - shift; mant = Bignat.shift_left m shift; prec }
    end
    else begin
      let shift = b - prec in
      let q = Bignat.shift_right m shift in
      let round_bit = Bignat.test_bit m (shift - 1) in
      let sticky_bits = sticky || Bignat.any_bit_below m (shift - 1) in
      let inexact = round_bit || sticky_bits in
      let up =
        match mode with
        | Nearest_even -> round_bit && (sticky_bits || Bignat.test_bit q 0)
        | Toward_zero -> false
        | Upward -> inexact && sign > 0
        | Downward -> inexact && sign < 0
      in
      let q = if up then Bignat.add Bignat.one q else q in
      if Bignat.bit_length q > prec then
        (* Carried out: q = 2^prec; renormalize. *)
        { kind = Finite; sign; exp = e + shift + 1; mant = Bignat.shift_right q 1; prec }
      else { kind = Finite; sign; exp = e + shift; mant = q; prec }
    end
  end

let of_float ~prec f =
  if Float.is_nan f then make_nan ~prec
  else if f = Float.infinity then make_inf ~prec 1
  else if f = Float.neg_infinity then make_inf ~prec (-1)
  else if f = 0.0 then make_zero ~prec
  else begin
    let m, e = Float.frexp (Float.abs f) in
    let mi = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
    round_mant ~prec ~sign:(if f < 0.0 then -1 else 1) (Bignat.of_int mi) (e - 53)
  end

let of_int ~prec i =
  if i = 0 then make_zero ~prec
  else begin
    let s = if i < 0 then -1 else 1 in
    let m = if i = min_int then Bignat.shift_left Bignat.one 62 else Bignat.of_int (abs i) in
    round_mant ~prec ~sign:s m 0
  end

let to_float t =
  match t.kind with
  | Zero -> 0.0
  | Nan -> Float.nan
  | Inf -> if t.sign > 0 then Float.infinity else Float.neg_infinity
  | Finite ->
      let r = round_mant ~prec:53 ~sign:t.sign t.mant t.exp in
      let m =
        match Bignat.to_int_opt r.mant with Some m -> m | None -> assert false
      in
      Float.of_int t.sign *. Float.ldexp (Float.of_int m) r.exp

let round_to ~prec t =
  match t.kind with
  | Zero -> make_zero ~prec
  | Nan -> make_nan ~prec
  | Inf -> make_inf ~prec t.sign
  | Finite -> round_mant ~prec ~sign:t.sign t.mant t.exp

let neg t = if t.kind = Finite || t.kind = Inf then { t with sign = -t.sign } else t
let abs t = if t.kind = Finite || t.kind = Inf then { t with sign = 1 } else t

(* Exponent of the value's leading bit. *)
let leading_exp t = t.exp + Bignat.bit_length t.mant - 1

let add_finite prec a b =
  (* If the operands are so far apart that b cannot influence the
     rounding of a, return a (re-rounded): b contributes strictly less
     than a quarter ulp. *)
  if leading_exp a - leading_exp b > prec + 2 then round_mant ~prec ~sign:a.sign a.mant a.exp
  else if leading_exp b - leading_exp a > prec + 2 then round_mant ~prec ~sign:b.sign b.mant b.exp
  else begin
    let e = min a.exp b.exp in
    let ma = Bignat.shift_left a.mant (a.exp - e) in
    let mb = Bignat.shift_left b.mant (b.exp - e) in
    if a.sign = b.sign then round_mant ~prec ~sign:a.sign (Bignat.add ma mb) e
    else begin
      let c = Bignat.compare ma mb in
      if c = 0 then make_zero ~prec
      else if c > 0 then round_mant ~prec ~sign:a.sign (Bignat.sub ma mb) e
      else round_mant ~prec ~sign:b.sign (Bignat.sub mb ma) e
    end
  end

let add a b =
  let prec = a.prec in
  match (a.kind, b.kind) with
  | Nan, _ | _, Nan -> make_nan ~prec
  | Inf, Inf -> if a.sign = b.sign then make_inf ~prec a.sign else make_nan ~prec
  | Inf, _ -> make_inf ~prec a.sign
  | _, Inf -> make_inf ~prec b.sign
  | Zero, Zero -> make_zero ~prec
  | Zero, Finite -> round_to ~prec b
  | Finite, Zero -> round_to ~prec a
  | Finite, Finite -> add_finite prec a b

let sub a b = add a (neg b)

let mul a b =
  let prec = a.prec in
  match (a.kind, b.kind) with
  | Nan, _ | _, Nan -> make_nan ~prec
  | Inf, Zero | Zero, Inf -> make_nan ~prec
  | Inf, _ | _, Inf -> make_inf ~prec (a.sign * b.sign)
  | Zero, _ | _, Zero -> make_zero ~prec
  | Finite, Finite ->
      round_mant ~prec ~sign:(a.sign * b.sign) (Bignat.mul a.mant b.mant) (a.exp + b.exp)

let div a b =
  let prec = a.prec in
  match (a.kind, b.kind) with
  | Nan, _ | _, Nan -> make_nan ~prec
  | Inf, Inf -> make_nan ~prec
  | Inf, _ -> make_inf ~prec (a.sign * b.sign)
  | _, Inf -> make_zero ~prec
  | Zero, Zero -> make_nan ~prec
  | Zero, _ -> make_zero ~prec
  | Finite, Zero -> make_inf ~prec a.sign
  | Finite, Finite ->
      (* Extend the numerator so the quotient has at least prec+2 bits,
         then round with the remainder as sticky. *)
      let extra = prec + 2 + max 0 (Bignat.bit_length b.mant - Bignat.bit_length a.mant) in
      let num = Bignat.shift_left a.mant extra in
      let q, r = Bignat.divmod num b.mant in
      round_mant ~prec ~sign:(a.sign * b.sign)
        ~sticky:(not (Bignat.is_zero r))
        q
        (a.exp + (-extra) - b.exp)

let sqrt a =
  let prec = a.prec in
  match a.kind with
  | Nan -> make_nan ~prec
  | Zero -> make_zero ~prec
  | Inf -> if a.sign > 0 then make_inf ~prec 1 else make_nan ~prec
  | Finite ->
      if a.sign < 0 then make_nan ~prec
      else begin
        (* s = isqrt (mant * 2^k) with e - k even and enough bits. *)
        let k0 = prec + 4 in
        let k = if (a.exp - k0) land 1 = 0 then k0 else k0 + 1 in
        let s, r = Bignat.isqrt_rem (Bignat.shift_left a.mant k) in
        round_mant ~prec ~sign:1 ~sticky:(not (Bignat.is_zero r)) s ((a.exp - k) / 2)
      end

(* 2^(leading_exp - prec + 1): an upper bound on the rounding error of
   any single operation that produced [t] (one ulp). *)
let ulp_bound t =
  match t.kind with
  | Zero -> make_zero ~prec:t.prec
  | Nan -> make_nan ~prec:t.prec
  | Inf -> make_inf ~prec:t.prec 1
  | Finite ->
      { kind = Finite; sign = 1; exp = leading_exp t - t.prec + 1;
        mant = Bignat.shift_left Bignat.one (t.prec - 1); prec = t.prec }
      |> fun v -> { v with exp = v.exp - (t.prec - 1) }

(* Correctly-rounded fused multiply-add: the product at twice the
   operand precision is exact, so the final addition performs the only
   rounding. *)
let fma a b c =
  let wide = mul (round_to ~prec:(a.prec + b.prec + 2) a) b in
  round_to ~prec:a.prec (add (round_to ~prec:(wide.prec + c.prec + 2) wide) c)

let compare a b =
  match (a.kind, b.kind) with
  | Nan, Nan -> 0
  | Nan, _ -> -1
  | _, Nan -> 1
  | _ ->
      let sa = sign a and sb = sign b in
      if sa <> sb then Stdlib.compare sa sb
      else if a.kind = Inf || b.kind = Inf then
        if a.kind = b.kind then 0 else if a.kind = Inf then sa else -sb
      else if a.kind = Zero then 0
      else begin
        (* Same nonzero sign, both finite. *)
        let la = leading_exp a and lb = leading_exp b in
        if la <> lb then sa * Stdlib.compare la lb
        else begin
          let e = min a.exp b.exp in
          sa
          * Bignat.compare
              (Bignat.shift_left a.mant (a.exp - e))
              (Bignat.shift_left b.mant (b.exp - e))
        end
      end

let equal a b = (not (is_nan a)) && (not (is_nan b)) && compare a b = 0

let of_expansion ~prec xs =
  Array.fold_left (fun acc x -> add acc (of_float ~prec x)) (make_zero ~prec) xs

let to_expansion ~n t =
  let out = Array.make n 0.0 in
  let rest = ref t in
  for i = 0 to n - 1 do
    let x = to_float !rest in
    out.(i) <- x;
    rest := sub !rest (of_float ~prec:t.prec x)
  done;
  out

let of_string ~prec s =
  let s = String.trim s in
  if s = "" then invalid_arg "Bigfloat.of_string: empty";
  match String.lowercase_ascii s with
  | "nan" -> make_nan ~prec
  | "inf" | "+inf" | "infinity" -> make_inf ~prec 1
  | "-inf" | "-infinity" -> make_inf ~prec (-1)
  | _ ->
      let n = String.length s in
      let pos = ref 0 in
      let negative =
        if s.[0] = '-' then begin
          incr pos;
          true
        end
        else begin
          if s.[0] = '+' then incr pos;
          false
        end
      in
      let digits = Buffer.create 32 in
      let frac = ref 0 in
      let seen_dot = ref false in
      let exp10 = ref 0 in
      let malformed () = invalid_arg (Printf.sprintf "Bigfloat.of_string: %S" s) in
      (let continue = ref true in
       while !continue && !pos < n do
         (match s.[!pos] with
         | '0' .. '9' as c ->
             Buffer.add_char digits c;
             if !seen_dot then incr frac;
             incr pos
         | '.' ->
             if !seen_dot then malformed ();
             seen_dot := true;
             incr pos
         | '_' -> incr pos
         | 'e' | 'E' ->
             incr pos;
             (try exp10 := int_of_string (String.sub s !pos (n - !pos)) with _ -> malformed ());
             pos := n;
             continue := false
         | _ -> malformed ())
       done);
      if Buffer.length digits = 0 then malformed ();
      let d = Bignat.of_decimal_string (Buffer.contents digits) in
      let sign = if negative then -1 else 1 in
      if Bignat.is_zero d then make_zero ~prec
      else begin
        let e = !exp10 - !frac in
        (* value = d * 10^e = d * 5^e * 2^e: fold the 5-power into the
           integer (e >= 0) or divide with sticky (e < 0) so the result
           is rounded exactly once. *)
        if e >= 0 then round_mant ~prec ~sign (Bignat.mul d (Bignat.pow5 e)) e
        else begin
          let p5 = Bignat.pow5 (-e) in
          let extra = prec + 3 + Bignat.bit_length p5 in
          let q, r = Bignat.divmod (Bignat.shift_left d extra) p5 in
          round_mant ~prec ~sign ~sticky:(not (Bignat.is_zero r)) q (e - extra)
        end
      end

let to_string ?digits t =
  match t.kind with
  | Nan -> "nan"
  | Zero -> "0.0"
  | Inf -> if t.sign > 0 then "inf" else "-inf"
  | Finite ->
      let digits =
        match digits with
        | Some d -> max 1 d
        | None -> 1 + int_of_float (Float.of_int t.prec *. 0.30103)
      in
      (* Scale so that the integer part has exactly [digits] digits:
         find e10 with 10^(digits-1) <= |t| * 10^(e10) < 10^digits,
         then render round(|t| * 10^e10) and place the point. *)
      let lexp = leading_exp t in
      (* |t| ~ 2^lexp; decimal exponent of leading digit: *)
      let d10 = int_of_float (Float.floor (Float.of_int lexp *. 0.30103)) in
      let scale = digits - 1 - d10 in
      let scaled s10 =
        (* round(|t| * 10^s10) as a decimal string *)
        if s10 >= 0 then begin
          (* mant * 2^exp * 2^s10 * 5^s10 *)
          let m = Bignat.mul t.mant (Bignat.pow5 s10) in
          let e = t.exp + s10 in
          if e >= 0 then Bignat.shift_left m e
          else begin
            let q, r = (Bignat.shift_right m (-e), Bignat.any_bit_below m (-e)) in
            (* round to nearest integer *)
            if Bignat.test_bit m (-e - 1) && (r || Bignat.test_bit q 0) then
              Bignat.add q Bignat.one
            else q
          end
        end
        else begin
          let p5 = Bignat.pow5 (-s10) in
          let e = t.exp + s10 in
          let num = if e >= 0 then Bignat.shift_left t.mant e else t.mant in
          let q, r = Bignat.divmod num p5 in
          let den_shift = if e >= 0 then 0 else -e in
          if den_shift = 0 then
            if (not (Bignat.is_zero r)) && Bignat.compare (Bignat.shift_left r 1) p5 >= 0 then
              Bignat.add q Bignat.one
            else q
          else begin
            (* divide further by 2^den_shift with rounding *)
            let q2 = Bignat.shift_right q den_shift in
            let sticky =
              Bignat.any_bit_below q (den_shift - 1) || not (Bignat.is_zero r)
            in
            if den_shift >= 1 && Bignat.test_bit q (den_shift - 1) && (sticky || Bignat.test_bit q2 0)
            then Bignat.add q2 Bignat.one
            else q2
          end
        end
      in
      let int_str = Bignat.to_string (scaled scale) in
      (* Rounding can spill to digits+1 digits (e.g. 9.99 -> 10.0). *)
      let int_str, d10 = if String.length int_str > digits then (int_str, d10 + 1) else (int_str, d10) in
      let int_str =
        if String.length int_str < digits then String.make (digits - String.length int_str) '0' ^ int_str
        else int_str
      in
      let buf = Buffer.create (digits + 8) in
      if t.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_char buf int_str.[0];
      Buffer.add_char buf '.';
      if digits = 1 then Buffer.add_char buf '0'
      else Buffer.add_string buf (String.sub int_str 1 (min (digits - 1) (String.length int_str - 1)));
      if d10 <> 0 then Buffer.add_string buf (Printf.sprintf "e%+03d" d10);
      Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Directed-rounding variants: recompute the exact (or
   sticky-augmented) intermediate and round in the requested
   direction.  Implemented by re-running the operation at an extended
   precision whose error is strictly below the final ulp, then
   re-rounding directionally with the inexactness recovered from the
   comparison of the two results.  For add/sub/mul the intermediate at
   [prec + 64] is exact whenever the operands fit, so the direction is
   exact; for div/sqrt the guard makes misrounding probability
   negligible but not zero, which matches a faithful-rounding
   contract. *)
let with_mode op mode a =
  let prec = a.prec in
  let wide = op (round_to ~prec:(prec + 64) a) in
  match wide.kind with
  | Finite -> round_mant ~mode ~prec ~sign:wide.sign wide.mant wide.exp
  | _ -> round_to ~prec wide

let add_mode mode a b = with_mode (fun a' -> add a' (round_to ~prec:(a.prec + 64) b)) mode a
let sub_mode mode a b = with_mode (fun a' -> sub a' (round_to ~prec:(a.prec + 64) b)) mode a
let mul_mode mode a b = with_mode (fun a' -> mul a' (round_to ~prec:(a.prec + 64) b)) mode a
let div_mode mode a b = with_mode (fun a' -> div a' (round_to ~prec:(a.prec + 64) b)) mode a
let sqrt_mode mode a = with_mode sqrt mode a

(* ------------------------------------------------------------------ *)
(* Transcendental functions at arbitrary precision, in the style of
   MPFR: series evaluation with guard bits, then one final rounding.
   These are deliberately straightforward (they exist to be correct,
   to serve as the independent cross-check for the MultiFloat
   elementary functions, and to complete the MPFR-class interface),
   not fast. *)

let guard = 24

(* ln 2 = 2 atanh (1/3) = 2 sum_{i>=0} 1 / ((2i+1) 3^(2i+1)). *)
let ln2_cache : (int, t) Hashtbl.t = Hashtbl.create 4

let ln2 ~prec =
  match Hashtbl.find_opt ln2_cache prec with
  | Some v -> v
  | None ->
      let wp = prec + guard in
      let nine = of_int ~prec:wp 9 in
      let term = ref (div (of_int ~prec:wp 1) (of_int ~prec:wp 3)) in
      let sum = ref !term in
      let i = ref 1 in
      let continue = ref true in
      while !continue do
        term := div !term nine;
        let contrib = div !term (of_int ~prec:wp ((2 * !i) + 1)) in
        sum := add !sum contrib;
        if is_zero contrib || leading_exp contrib < leading_exp !sum - wp then continue := false;
        incr i
      done;
      let v = round_to ~prec (add !sum !sum) in
      Hashtbl.replace ln2_cache prec v;
      v

(* pi by Machin's formula with exact small reciprocals. *)
let pi_cache : (int, t) Hashtbl.t = Hashtbl.create 4

let atan_inv ~prec k =
  (* atan (1/k) = sum (-1)^i / ((2i+1) k^(2i+1)) *)
  let k2 = of_int ~prec (k * k) in
  let term = ref (div (of_int ~prec 1) (of_int ~prec k)) in
  let sum = ref !term in
  let i = ref 1 in
  let continue = ref true in
  while !continue do
    term := div !term k2;
    let contrib = div !term (of_int ~prec ((2 * !i) + 1)) in
    sum := (if !i land 1 = 1 then sub !sum contrib else add !sum contrib);
    if is_zero contrib || leading_exp contrib < leading_exp !sum - prec then continue := false;
    incr i
  done;
  !sum

let pi ~prec =
  match Hashtbl.find_opt pi_cache prec with
  | Some v -> v
  | None ->
      let wp = prec + guard in
      let a5 = atan_inv ~prec:wp 5 in
      let a239 = atan_inv ~prec:wp 239 in
      let quarter = sub (mul (of_int ~prec:wp 4) a5) a239 in
      let v = round_to ~prec (mul (of_int ~prec:wp 4) quarter) in
      Hashtbl.replace pi_cache prec v;
      v

let exp x =
  let prec = x.prec in
  match x.kind with
  | Nan -> make_nan ~prec
  | Zero -> of_int ~prec 1
  | Inf -> if x.sign > 0 then make_inf ~prec 1 else make_zero ~prec
  | Finite ->
      let wp = prec + guard + 16 in
      let xf = to_float x in
      if xf > 1e9 then make_inf ~prec 1
      else if xf < -1e9 then make_zero ~prec
      else begin
        (* x = k ln2 + r, r in [-ln2/2, ln2/2]; halve r m times. *)
        let l2 = ln2 ~prec:wp in
        let k = Float.to_int (Float.round (xf /. 0.6931471805599453)) in
        let r = sub (round_to ~prec:wp x) (mul (of_int ~prec:wp k) l2) in
        let m = 8 in
        let r' =
          match r.kind with
          | Finite -> { r with exp = r.exp - m }
          | _ -> r
        in
        (* Taylor for exp on the tiny argument. *)
        let term = ref (of_int ~prec:wp 1) in
        let sum = ref (of_int ~prec:wp 1) in
        let i = ref 1 in
        let continue = ref true in
        while !continue do
          term := div (mul !term r') (of_int ~prec:wp !i);
          sum := add !sum !term;
          if
            is_zero !term
            || (not (is_zero !sum))
               && (is_zero !term || leading_exp !term < leading_exp !sum - wp)
          then continue := false;
          incr i
        done;
        (* Square back up and apply the power of two. *)
        let s = ref !sum in
        for _ = 1 to m do
          s := mul !s !s
        done;
        let s = !s in
        let shifted = match s.kind with Finite -> { s with exp = s.exp + k } | _ -> s in
        round_to ~prec shifted
      end

let log x =
  let prec = x.prec in
  match x.kind with
  | Nan -> make_nan ~prec
  | Zero -> make_inf ~prec (-1)
  | Inf -> if x.sign > 0 then make_inf ~prec 1 else make_nan ~prec
  | Finite ->
      if x.sign < 0 then make_nan ~prec
      else begin
        let wp = prec + guard in
        (* Reduce to m in [1, 2) x 2^e: log x = e ln2 + log m, then
           Newton on exp: y <- y + (x' exp(-y) - 1). *)
        let e = leading_exp x in
        let m = { x with exp = x.exp - e; prec = wp } in
        let y = ref (of_float ~prec:wp (Float.log (to_float m))) in
        let iters =
          let rec go bits i = if bits >= wp then i else go (2 * bits) (i + 1) in
          go 50 0
        in
        for _ = 1 to iters do
          let ey = exp (round_to ~prec:wp (neg !y)) in
          y := add !y (sub (mul m ey) (of_int ~prec:wp 1))
        done;
        round_to ~prec (add !y (mul (of_int ~prec:wp e) (ln2 ~prec:wp)))
      end

(* sin and cos by reduction mod pi/2 and Taylor. *)
let sin_cos x =
  let prec = x.prec in
  match x.kind with
  | Nan | Inf -> (make_nan ~prec, make_nan ~prec)
  | Zero -> (make_zero ~prec, of_int ~prec 1)
  | Finite ->
      let wp = prec + guard + 16 in
      let p = pi ~prec:wp in
      let half_pi = { p with exp = p.exp - 1 } in
      let xw = round_to ~prec:wp x in
      let kf = Float.round (to_float x /. 1.5707963267948966) in
      let k = Float.to_int kf in
      let r = sub xw (mul (of_int ~prec:wp k) half_pi) in
      let taylor_sin r =
        let r2 = mul r r in
        let term = ref r in
        let sum = ref r in
        let i = ref 1 in
        let continue = ref (not (is_zero r)) in
        while !continue do
          term := div (mul !term r2) (of_int ~prec:wp ((2 * !i) * ((2 * !i) + 1)));
          sum := (if !i land 1 = 1 then sub !sum !term else add !sum !term);
          if is_zero !term || leading_exp !term < leading_exp !sum - wp then continue := false;
          incr i
        done;
        !sum
      in
      let taylor_cos r =
        let r2 = mul r r in
        let one = of_int ~prec:wp 1 in
        let term = ref one in
        let sum = ref one in
        let i = ref 1 in
        let continue = ref (not (is_zero r)) in
        while !continue do
          term := div (mul !term r2) (of_int ~prec:wp (((2 * !i) - 1) * (2 * !i)));
          sum := (if !i land 1 = 1 then sub !sum !term else add !sum !term);
          if is_zero !term || leading_exp !term < leading_exp !sum - wp then continue := false;
          incr i
        done;
        !sum
      in
      let s = taylor_sin r and c = taylor_cos r in
      let q = ((k mod 4) + 4) mod 4 in
      let fin v = round_to ~prec v in
      (match q with
      | 0 -> (fin s, fin c)
      | 1 -> (fin c, fin (neg s))
      | 2 -> (fin (neg s), fin (neg c))
      | _ -> (fin (neg c), fin s))

let sin x = fst (sin_cos x)
let cos x = snd (sin_cos x)

let atan x =
  let prec = x.prec in
  match x.kind with
  | Nan -> make_nan ~prec
  | Zero -> make_zero ~prec
  | Inf ->
      let p = pi ~prec in
      let h = { p with exp = p.exp - 1 } in
      if x.sign > 0 then h else neg h
  | Finite ->
      let wp = prec + guard in
      (* Newton on tan via sin/cos: t <- t + (x cos t - sin t) cos t. *)
      let xw = round_to ~prec:wp x in
      let t = ref (of_float ~prec:wp (Float.atan (to_float x))) in
      let iters =
        let rec go bits i = if bits >= wp then i else go (2 * bits) (i + 1) in
        go 50 0
      in
      for _ = 1 to iters do
        let s, c = sin_cos !t in
        t := add !t (mul (sub (mul xw c) s) c)
      done;
      round_to ~prec !t
