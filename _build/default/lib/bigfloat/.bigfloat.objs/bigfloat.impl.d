lib/bigfloat/bigfloat.ml: Array Bignat Buffer Float Format Hashtbl Int64 Printf Stdlib String
