lib/bigfloat/bignat.mli:
