lib/bigfloat/bignat.ml: Array Buffer Char Printf Stdlib String
