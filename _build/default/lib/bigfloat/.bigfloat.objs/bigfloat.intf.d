lib/bigfloat/bigfloat.mli: Bignat Format
