(** Arbitrary-precision natural numbers on 24-bit limbs.

    This is the big-integer layer of the software-FPU substrate
    ({!Bigfloat}), standing in for GMP's mpn layer.  24-bit limbs keep
    every intermediate product and carry comfortably inside OCaml's
    63-bit native integers (a limb product is 48 bits, so thousands of
    partial products can accumulate before overflow).

    Values are immutable little-endian limb arrays with no trailing zero
    limbs; the empty array is zero. *)

type t

val zero : t
val one : t
val of_int : int -> t
(** [of_int n] for [n >= 0]. *)

val to_int_opt : t -> int option
(** [None] if the value exceeds [max_int]. *)

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] requires [a >= b]. *)

val mul : t -> t -> t
val mul_small : t -> int -> t
(** Multiply by a small nonnegative integer (< 2^38). *)

val add_small : t -> int -> t
val divmod_small : t -> int -> t * int
(** Divide by a small positive integer (< 2^24); returns quotient and
    remainder. *)

val divmod : t -> t -> t * t
(** Schoolbook binary long division; the divisor must be nonzero. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Position of the highest set bit plus one; 0 for zero. *)

val test_bit : t -> int -> bool
val any_bit_below : t -> int -> bool
(** True if any bit strictly below position [k] is set (the "sticky"
    test used in rounding). *)

val extract_bits : t -> int -> int -> t
(** [extract_bits x lo width] is [(x lsr lo) mod 2^width]. *)

val isqrt_rem : t -> t * t
(** Integer square root with remainder: [(s, r)] with [s*s + r = x] and
    [r <= 2s]. *)

val pow5 : int -> t
(** [5^k], exactly. *)

val to_string : t -> string
(** Decimal rendering. *)

val of_decimal_string : string -> t
(** Parse a string of decimal digits. *)
