(** Generic [MultiFloat<T, N>]: N-term expansion arithmetic over any
    {!Base.BASE}, mirroring the portability story of Section 5 of the
    paper ("datatypes like MultiFloat<float, 4> can be used to provide
    extended-precision arithmetic on machines that lack double-precision
    hardware").

    Unlike the hand-inlined {!Mf2}/{!Mf3}/{!Mf4} kernels, this
    implementation represents expansions as arrays, supports any
    [N >= 1], and uses the straightforward [n^2]-product expansion step
    without the magnitude cutoff, trading speed for generality.  It is
    the implementation used for the emulated-binary32 (GPU substitute)
    experiments and as a cross-check of the specialized kernels. *)

module Make (_ : Base.BASE) (_ : sig
  val terms : int
end) : sig
  type t

  val terms : int
  val precision_bits : int
  val zero : t
  val one : t
  val of_float : float -> t
  val to_float : t -> float
  val components : t -> float array
  val of_components : float array -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val sqrt : t -> t
  val neg : t -> t
  val abs : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
end
