(** Four-term floating-point expansions: ~215-bit (octuple) precision.

    Branch-free arithmetic from the reconstructed 4-term FPANs (Figures
    4 and 7 of the paper), checked against the [Fpan] interpreter and
    verified to the paper's error bounds (2^-208 relative). *)

include Ops.S

val mul_no_fma : t -> t -> t
(** The same multiplication FPAN with TwoProd realized by
    Veltkamp-Dekker splitting (17 flops instead of 2): the kernel for
    hardware without a fused multiply-add, and the subject of the
    no-FMA benchmark ablation. *)
