(* Hand-inlined transcriptions of the add2/mul2 networks
   (Fpan.Networks); wire variables [wN] follow the network diagrams. *)

module K = struct
  type t = { hi : float; lo : float }

  let terms = 2
  let precision_bits = 107
  let error_exp = 103 (* min of add (105) and mul (103) *)
  let zero = { hi = 0.0; lo = 0.0 }
  let of_float x = { hi = x; lo = 0.0 }
  let to_float a = a.hi
  let components a = [| a.hi; a.lo |]

  let of_components c =
    assert (Array.length c = 2);
    { hi = c.(0); lo = c.(1) }

  let add_terms x0 x1 y0 y1 =
    let w0, w1 = Eft.two_sum x0 y0 in
    let w2, w3 = Eft.two_sum x1 y1 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w1 = w1 +. w3 in
    let w2 = w2 +. w1 in
    let hi, lo = Eft.fast_two_sum w0 w2 in
    { hi; lo }

  let add a b = add_terms a.hi a.lo b.hi b.lo
  let sub a b = add_terms a.hi a.lo (-.b.hi) (-.b.lo)

  let mul a b =
    let p00, e00 = Eft.two_prod a.hi b.hi in
    let t = (a.hi *. b.lo) +. (a.lo *. b.hi) in
    let u = t +. e00 in
    let hi, lo = Eft.fast_two_sum p00 u in
    { hi; lo }

  let neg a = { hi = -.a.hi; lo = -.a.lo }

  let add_float a f =
    (* add2 with y1 = 0: one TwoSum and one Add drop out. *)
    let s0, e0 = Eft.two_sum a.hi f in
    let v, vl = Eft.two_sum s0 a.lo in
    let w = vl +. e0 in
    let hi, lo = Eft.fast_two_sum v w in
    { hi; lo }

  let sub_float a f = add_float a (-.f)

  let mul_float a f =
    (* mul2 with y1 = 0: the p01 product drops out. *)
    let p00, e00 = Eft.two_prod a.hi f in
    let u = (a.lo *. f) +. e00 in
    let hi, lo = Eft.fast_two_sum p00 u in
    { hi; lo }

  let scale_pow2 a k = { hi = Float.ldexp a.hi k; lo = Float.ldexp a.lo k }
end

include Ops.Make (K)

(* The multiplication kernel for hardware without a fused multiply-add:
   identical network, TwoProd realized by Veltkamp-Dekker splitting. *)
let mul_no_fma (a : K.t) (b : K.t) : K.t =
  let p00, e00 = Eft.two_prod_dekker a.K.hi b.K.hi in
  let t = (a.K.hi *. b.K.lo) +. (a.K.lo *. b.K.hi) in
  let u = t +. e00 in
  let hi, lo = Eft.fast_two_sum p00 u in
  { K.hi; K.lo }
