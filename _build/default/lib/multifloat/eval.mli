(** Arithmetic-expression evaluation at extended precision.

    A small recursive-descent evaluator for formulas over +, -, *, /,
    [^] (integer powers), parentheses, decimal literals, the constants
    [pi] and [e], and the elementary functions (sqrt, abs, inv, exp,
    log/ln, log2, log10, sin, cos, tan, asin, acos, atan, sinh, cosh,
    tanh, floor, ceil, round).  This is the engine behind the
    [mf_calc] command-line tool. *)

module Make (M : Ops.S) (_ : module type of Elementary.Make (M)) : sig
  exception Parse_error of string

  val eval : string -> M.t
  (** Evaluate a formula; raises {!Parse_error} on malformed input and
      [Invalid_argument] on malformed numeric literals. *)

  val eval_with : vars:(string * M.t) list -> string -> M.t
  (** Like {!eval} with named variable bindings (case-insensitive;
      [pi], [e] and function names take precedence). *)

  val run : int option -> string -> int
  (** Evaluate and print with an optional digit count; returns a
      process exit code (0 ok, 1 error), printing errors to stderr. *)
end
