(* Hand-inlined transcriptions of the add4/mul4 networks
   (Fpan.Networks); wire variables [wN] follow the network diagrams. *)

module K = struct
  type t = { x0 : float; x1 : float; x2 : float; x3 : float }

  let terms = 4
  let precision_bits = 215
  let error_exp = 208
  let zero = { x0 = 0.0; x1 = 0.0; x2 = 0.0; x3 = 0.0 }
  let of_float x = { x0 = x; x1 = 0.0; x2 = 0.0; x3 = 0.0 }
  let to_float a = a.x0
  let components a = [| a.x0; a.x1; a.x2; a.x3 |]

  let of_components c =
    assert (Array.length c = 4);
    { x0 = c.(0); x1 = c.(1); x2 = c.(2); x3 = c.(3) }

  let add_terms ax0 ax1 ax2 ax3 bx0 bx1 bx2 bx3 =
    let w0, w1 = Eft.two_sum ax0 bx0 in
    let w2, w3 = Eft.two_sum ax1 bx1 in
    let w4, w5 = Eft.two_sum ax2 bx2 in
    let w6, w7 = Eft.two_sum ax3 bx3 in
    let w2, w1 = Eft.two_sum w2 w1 in
    let w4, w3 = Eft.two_sum w4 w3 in
    let w6, w5 = Eft.two_sum w6 w5 in
    let w4, w1 = Eft.two_sum w4 w1 in
    let w6, w3 = Eft.two_sum w6 w3 in
    let w6, w1 = Eft.two_sum w6 w1 in
    let w3 = w3 +. w1 in
    let w5 = w5 +. w7 in
    let w3 = w3 +. w5 in
    let w6, w3 = Eft.two_sum w6 w3 in
    let w4, w6 = Eft.two_sum w4 w6 in
    let w2, w4 = Eft.two_sum w2 w4 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w6, w3 = Eft.two_sum w6 w3 in
    let w4, w6 = Eft.two_sum w4 w6 in
    let w2, w4 = Eft.two_sum w2 w4 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w6, w3 = Eft.two_sum w6 w3 in
    let w4, w6 = Eft.two_sum w4 w6 in
    let w2, w4 = Eft.two_sum w2 w4 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w6 = w6 +. w3 in
    let w4, w6 = Eft.two_sum w4 w6 in
    let w2, w4 = Eft.two_sum w2 w4 in
    { x0 = w0; x1 = w2; x2 = w4; x3 = w6 }

  let add a b = add_terms a.x0 a.x1 a.x2 a.x3 b.x0 b.x1 b.x2 b.x3
  let sub a b = add_terms a.x0 a.x1 a.x2 a.x3 (-.b.x0) (-.b.x1) (-.b.x2) (-.b.x3)

  let mul a b =
    (* Expansion step: 6 TwoProds, 4 plain products. *)
    let w0, w3 = Eft.two_prod a.x0 b.x0 in
    let w1, w7 = Eft.two_prod a.x0 b.x1 in
    let w2, w8 = Eft.two_prod a.x1 b.x0 in
    let w4, w13 = Eft.two_prod a.x0 b.x2 in
    let w5, w14 = Eft.two_prod a.x1 b.x1 in
    let w6, w15 = Eft.two_prod a.x2 b.x0 in
    let w9 = a.x0 *. b.x3 in
    let w10 = a.x1 *. b.x2 in
    let w11 = a.x2 *. b.x1 in
    let w12 = a.x3 *. b.x0 in
    (* Accumulation FPAN (mul4). *)
    let w1, w2 = Eft.two_sum w1 w2 in
    let w1, w3 = Eft.two_sum w1 w3 in
    let w4, w6 = Eft.two_sum w4 w6 in
    let w4, w5 = Eft.two_sum w4 w5 in
    let w7, w8 = Eft.two_sum w7 w8 in
    let w4, w7 = Eft.two_sum w4 w7 in
    let w2, w3 = Eft.two_sum w2 w3 in
    let w4, w2 = Eft.two_sum w4 w2 in
    let w9 = w9 +. w12 in
    let w10 = w10 +. w11 in
    let w9 = w9 +. w10 in
    let w13 = w13 +. w15 in
    let w13 = w13 +. w14 in
    let w9 = w9 +. w13 in
    let w6 = w6 +. w5 in
    let w8 = w8 +. w7 in
    let w6 = w6 +. w8 in
    let w3 = w3 +. w2 in
    let w6 = w6 +. w3 in
    let w9 = w9 +. w6 in
    let w4, w9 = Eft.two_sum w4 w9 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w0, w1 = Eft.two_sum w0 w1 in
    let w4, w9 = Eft.two_sum w4 w9 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w0, w1 = Eft.two_sum w0 w1 in
    let w4, w9 = Eft.two_sum w4 w9 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w4, w9 = Eft.two_sum w4 w9 in
    { x0 = w0; x1 = w1; x2 = w4; x3 = w9 }

  let neg a = { x0 = -.a.x0; x1 = -.a.x1; x2 = -.a.x2; x3 = -.a.x3 }
  let add_float a f = add a (of_float f)
  let sub_float a f = add a (of_float (-.f))

  let mul_float a f =
    (* mul4 with y1 = y2 = y3 = 0; terms grouped strictly by total
       order: p10+e00 (order 1), p20+e10+carry (order 2),
       p30+e20+carries (order 3). *)
    let w0, w3 = Eft.two_prod a.x0 f in
    let w2, w8 = Eft.two_prod a.x1 f in
    let w6, w15 = Eft.two_prod a.x2 f in
    let w12 = a.x3 *. f in
    let w2, w3 = Eft.two_sum w2 w3 in
    let w6, w8 = Eft.two_sum w6 w8 in
    let w6, w3 = Eft.two_sum w6 w3 in
    let w12 = w12 +. w15 in
    let w12 = w12 +. w8 in
    let w12 = w12 +. w3 in
    let w6, w12 = Eft.two_sum w6 w12 in
    let w2, w6 = Eft.two_sum w2 w6 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w6, w12 = Eft.two_sum w6 w12 in
    let w2, w6 = Eft.two_sum w2 w6 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w6, w12 = Eft.two_sum w6 w12 in
    { x0 = w0; x1 = w2; x2 = w6; x3 = w12 }

  let scale_pow2 a k =
    { x0 = Float.ldexp a.x0 k;
      x1 = Float.ldexp a.x1 k;
      x2 = Float.ldexp a.x2 k;
      x3 = Float.ldexp a.x3 k }

  let mul_with two_prod a b =
    let w0, w3 = two_prod a.x0 b.x0 in
    let w1, w7 = two_prod a.x0 b.x1 in
    let w2, w8 = two_prod a.x1 b.x0 in
    let w4, w13 = two_prod a.x0 b.x2 in
    let w5, w14 = two_prod a.x1 b.x1 in
    let w6, w15 = two_prod a.x2 b.x0 in
    let w9 = a.x0 *. b.x3 in
    let w10 = a.x1 *. b.x2 in
    let w11 = a.x2 *. b.x1 in
    let w12 = a.x3 *. b.x0 in
    let w1, w2 = Eft.two_sum w1 w2 in
    let w1, w3 = Eft.two_sum w1 w3 in
    let w4, w6 = Eft.two_sum w4 w6 in
    let w4, w5 = Eft.two_sum w4 w5 in
    let w7, w8 = Eft.two_sum w7 w8 in
    let w4, w7 = Eft.two_sum w4 w7 in
    let w2, w3 = Eft.two_sum w2 w3 in
    let w4, w2 = Eft.two_sum w4 w2 in
    let w9 = w9 +. w12 in
    let w10 = w10 +. w11 in
    let w9 = w9 +. w10 in
    let w13 = w13 +. w15 in
    let w13 = w13 +. w14 in
    let w9 = w9 +. w13 in
    let w6 = w6 +. w5 in
    let w8 = w8 +. w7 in
    let w6 = w6 +. w8 in
    let w3 = w3 +. w2 in
    let w6 = w6 +. w3 in
    let w9 = w9 +. w6 in
    let w4, w9 = Eft.two_sum w4 w9 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w0, w1 = Eft.two_sum w0 w1 in
    let w4, w9 = Eft.two_sum w4 w9 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w0, w1 = Eft.two_sum w0 w1 in
    let w4, w9 = Eft.two_sum w4 w9 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w4, w9 = Eft.two_sum w4 w9 in
    { x0 = w0; x1 = w1; x2 = w4; x3 = w9 }
end

include Ops.Make (K)

(* Multiplication for hardware without a fused multiply-add. *)
let mul_no_fma (a : K.t) (b : K.t) : K.t = K.mul_with Eft.two_prod_dekker a b
