(** Fast Fourier transforms over complex MultiFloat expansions.

    Spectral methods are among the workloads the paper's introduction
    targets (climate modeling, lattice QCD): FFT butterflies compound
    rounding error over log n stages and destroy reproducibility at
    scale.  This module provides an iterative radix-2 Cooley-Tukey
    transform at any MultiFloat precision, with twiddle factors from
    the {!Elementary} trigonometry, plus the exact-convolution helper
    built on it. *)

module Make (M : Ops.S) : sig
  module C : module type of Mf_complex.Make (M)

  val fft : C.t array -> C.t array
  (** Forward DFT, [X_k = sum_j x_j e^(-2 pi i jk / n)]; the length
      must be a power of two. *)

  val ifft : C.t array -> C.t array
  (** Inverse transform (normalized by [1/n]); [ifft (fft x) = x] to
      working precision. *)

  val dft_naive : C.t array -> C.t array
  (** O(n^2) reference implementation, any length. *)

  val convolve : M.t array -> M.t array -> M.t array
  (** Cyclic convolution of two real sequences of equal power-of-two
      length via the transform. *)
end
