(** Derived MultiFloat operations: everything beyond the hand-inlined
    add/sub/mul kernels.  Division and square root follow Section 4.3 of
    the paper: division-free Newton-Raphson iteration on [1/a] and
    [1/sqrt a] with a Karp-Markstein final correction. *)

module type S = sig
  include Kernel.KERNEL

  val one : t
  val two : t
  val of_int : int -> t
  val is_zero : t -> bool
  val is_nan : t -> bool
  val is_finite : t -> bool
  val sign : t -> int
  val abs : t -> t

  val inv : t -> t
  (** Newton-Raphson reciprocal, accurate to the full expansion
      precision. *)

  val div : t -> t -> t
  val div_float : t -> float -> t

  val sqrt : t -> t
  (** Newton-Raphson square root via the inverse square root; NaN for
      negative input, 0 for 0. *)

  val pow_int : t -> int -> t
  (** Integer power by binary exponentiation ([pow_int x 0 = one],
      negative exponents via {!inv}). *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t

  val floor : t -> t
  (** Largest integer value not above the argument (exact: integers up
      to the full expansion precision are representable). *)

  val ceil : t -> t
  val trunc : t -> t
  val round : t -> t
  (** Nearest integer, half away from zero (like [Float.round]). *)

  val to_int : t -> int
  (** Truncating conversion; undefined beyond [max_int]. *)

  val rem : t -> t -> t
  (** [rem a b = a - b * trunc (a / b)] (the sign follows [a], as in
      [Float.rem]). *)

  val to_string : ?digits:int -> t -> string
  (** Scientific-notation rendering with [digits] significant decimal
      digits (default: full precision).  The last digit may be off by
      one unit: the conversion runs in the expansion arithmetic itself
      and is not guaranteed correctly rounded. *)

  val of_string : string -> t
  (** Parse a decimal literal (optionally signed, with fraction and
      exponent).  Raises [Invalid_argument] on malformed input. *)

  val pp : Format.formatter -> t -> unit

  val to_hex : t -> string
  (** Exact, lossless serialization: the components in C99 hexadecimal
      float notation joined by ["|"].  Round-trips bit-for-bit through
      {!of_hex}. *)

  val of_hex : string -> t
  (** Inverse of {!to_hex}.  Raises [Invalid_argument] on malformed
      input or wrong component count. *)

  val decimal_digits : int
  (** Significant decimal digits carried by this precision. *)

  module Infix : sig
    val ( + ) : t -> t -> t
    val ( - ) : t -> t -> t
    val ( * ) : t -> t -> t
    val ( / ) : t -> t -> t
    val ( ~- ) : t -> t
    val ( = ) : t -> t -> bool
    val ( < ) : t -> t -> bool
    val ( <= ) : t -> t -> bool
    val ( > ) : t -> t -> bool
    val ( >= ) : t -> t -> bool
  end
end

module Make (K : Kernel.KERNEL) : S with type t = K.t = struct
  include K

  let one = of_float 1.0
  let two = of_float 2.0

  let of_int i =
    if Stdlib.abs i < 1 lsl 53 then of_float (Float.of_int i)
    else begin
      (* Split into exact 30-bit halves; both convert exactly. *)
      let hi = i asr 30 and lo = i land ((1 lsl 30) - 1) in
      add_float (scale_pow2 (of_float (Float.of_int hi)) 30) (Float.of_int lo)
    end

  let is_zero a = to_float a = 0.0
  let is_nan a = Float.is_nan (to_float a)
  let is_finite a = Array.for_all Float.is_finite (components a)
  let sign a = Stdlib.compare (to_float a) 0.0
  let abs a = if to_float a < 0.0 then neg a else a

  (* Number of n-term Newton iterations needed to go from 53 accurate
     bits to the full precision, doubling each time. *)
  let newton_iters =
    let rec go bits iters = if bits >= precision_bits then iters else go (2 * bits) (iters + 1) in
    go 53 0

  let inv a =
    let a0 = to_float a in
    if a0 = 0.0 || Float.is_nan a0 then of_float (1.0 /. a0)
    else begin
      let x = ref (of_float (1.0 /. a0)) in
      for _ = 1 to newton_iters do
        (* x <- x + x (1 - a x) *)
        x := add !x (mul !x (sub one (mul a !x)))
      done;
      !x
    end

  let div b a =
    let a0 = to_float a in
    if a0 = 0.0 || Float.is_nan a0 then mul_float b (1.0 /. a0)
    else begin
      let t = inv a in
      let q = mul b t in
      (* Karp-Markstein correction: q + t (b - a q). *)
      let r = sub b (mul a q) in
      add q (mul t r)
    end

  let div_float b f = div b (of_float f)

  let sqrt a =
    let a0 = to_float a in
    if a0 = 0.0 then zero
    else if a0 < 0.0 || Float.is_nan a0 then of_float Float.nan
    else begin
      (* Inverse square root by Newton: x <- x + x (1 - a x^2) / 2. *)
      let x = ref (of_float (1.0 /. Float.sqrt a0)) in
      for _ = 1 to newton_iters do
        let axx = mul a (mul !x !x) in
        x := add !x (scale_pow2 (mul !x (sub one axx)) (-1))
      done;
      (* sqrt a = a x, with a Karp-Markstein correction. *)
      let s = mul a !x in
      let r = sub a (mul s s) in
      add s (scale_pow2 (mul !x r) (-1))
    end

  let rec pow_int x k =
    if k < 0 then inv (pow_int x (-k))
    else if k = 0 then one
    else begin
      let h = pow_int x (k / 2) in
      let h2 = mul h h in
      if k land 1 = 0 then h2 else mul h2 x
    end

  let compare a b =
    let d = to_float (sub a b) in
    Float.compare d 0.0

  let equal a b = compare a b = 0
  let min a b = if compare a b <= 0 then a else b
  let max a b = if compare a b <= 0 then b else a

  (* Componentwise floor, as in QD: floor the leading term; only when a
     component is already integral can the next one contribute. *)
  let floor a =
    let c = components a in
    let out = Array.make terms 0.0 in
    let i = ref 0 in
    let continue = ref true in
    while !continue && !i < terms do
      let f = Float.floor c.(!i) in
      out.(!i) <- f;
      if f = c.(!i) then incr i else continue := false
    done;
    (* Re-normalize through the exact adders. *)
    Array.fold_left (fun acc v -> add_float acc v) zero out

  let ceil a = neg (floor (neg a))

  let trunc a = if to_float a >= 0.0 then floor a else ceil a

  let round a =
    let half = of_float 0.5 in
    if to_float a >= 0.0 then floor (add a half) else ceil (sub a half)

  let to_int a =
    let t = trunc a in
    let c = components t in
    Array.fold_left (fun acc v -> acc + Float.to_int v) 0 c

  let rem a b = sub a (mul b (trunc (div a b)))

  let decimal_digits = Stdlib.(1 + int_of_float (Float.of_int precision_bits *. 0.30103))

  (* 10^k as an expansion, exactly for small k and to full working
     precision otherwise. *)
  let pow10 k = pow_int (of_float 10.0) k

  let to_string ?digits a =
    let digits = match digits with Some d -> Stdlib.max 1 d | None -> decimal_digits in
    let a0 = to_float a in
    if Float.is_nan a0 then "nan"
    else if a0 = Float.infinity then "inf"
    else if a0 = Float.neg_infinity then "-inf"
    else if a0 = 0.0 then "0.0"
    else begin
      let negative = a0 < 0.0 in
      let v = abs a in
      (* Decimal exponent of the leading digit. *)
      let e10 = ref (int_of_float (Float.floor (Float.log10 (Float.abs a0)))) in
      let m = ref (div v (pow10 !e10)) in
      (* log10 can be off by one near powers of ten; fix up. *)
      while to_float !m >= 10.0 do
        m := div_float !m 10.0;
        incr e10
      done;
      while to_float !m < 1.0 do
        m := mul_float !m 10.0;
        decr e10
      done;
      (* Extract digits+1 digits, then round the last away.  The leading
         component alone can misreport the floor by one when the tail is
         negative (e.g. 4 - 2^-57), so correct against the full value. *)
      let raw = Bytes.create (digits + 1) in
      for i = 0 to digits do
        let d = int_of_float (Float.floor (to_float !m)) in
        let r = sub_float !m (Float.of_int d) in
        let d, r =
          if to_float r < 0.0 then (d - 1, add_float r 1.0)
          else if to_float (sub_float r 1.0) >= 0.0 then (d + 1, sub_float r 1.0)
          else (d, r)
        in
        let d = Stdlib.min 9 (Stdlib.max 0 d) in
        Bytes.set raw i (Char.chr (d + Char.code '0'));
        m := mul_float r 10.0
      done;
      (* Round to [digits] digits using the extra digit. *)
      let digits_arr = Array.init (digits + 1) (fun i -> Char.code (Bytes.get raw i) - Char.code '0') in
      if digits_arr.(digits) >= 5 then begin
        let rec carry i =
          if i < 0 then begin
            (* 9.99... rolled over to 10.0: shift the exponent. *)
            digits_arr.(0) <- 1;
            for j = 1 to digits - 1 do
              digits_arr.(j) <- 0
            done;
            incr e10
          end
          else if digits_arr.(i) = 9 then begin
            digits_arr.(i) <- 0;
            carry (i - 1)
          end
          else digits_arr.(i) <- digits_arr.(i) + 1
        in
        carry (digits - 1)
      end;
      let buf = Buffer.create (digits + 8) in
      if negative then Buffer.add_char buf '-';
      Buffer.add_char buf (Char.chr (digits_arr.(0) + Char.code '0'));
      Buffer.add_char buf '.';
      if digits = 1 then Buffer.add_char buf '0'
      else
        for i = 1 to digits - 1 do
          Buffer.add_char buf (Char.chr (digits_arr.(i) + Char.code '0'))
        done;
      if !e10 <> 0 then Buffer.add_string buf (Printf.sprintf "e%+03d" !e10);
      Buffer.contents buf
    end

  let of_string s =
    let fail () = invalid_arg (Printf.sprintf "Multifloat.of_string: %S" s) in
    let s = String.trim s in
    if s = "" then fail ();
    match String.lowercase_ascii s with
    | "nan" -> of_float Float.nan
    | "inf" | "+inf" | "infinity" -> of_float Float.infinity
    | "-inf" | "-infinity" -> of_float Float.neg_infinity
    | _ ->
        let n = String.length s in
        let pos = ref 0 in
        let negative =
          if s.[0] = '-' then begin
            incr pos;
            true
          end
          else begin
            if s.[0] = '+' then incr pos;
            false
          end
        in
        let acc = ref zero in
        let ndigits = ref 0 in
        let frac_digits = ref 0 in
        let seen_dot = ref false in
        let exp10 = ref 0 in
        (let continue = ref true in
         while !continue && !pos < n do
           match s.[!pos] with
           | '0' .. '9' as c ->
               acc := add_float (mul_float !acc 10.0) (Float.of_int (Char.code c - Char.code '0'));
               incr ndigits;
               if !seen_dot then incr frac_digits;
               incr pos
           | '.' ->
               if !seen_dot then fail ();
               seen_dot := true;
               incr pos
           | '_' -> incr pos
           | 'e' | 'E' ->
               incr pos;
               (try exp10 := int_of_string (String.sub s !pos (n - !pos)) with _ -> fail ());
               pos := n;
               continue := false
           | _ -> fail ()
         done);
        if !ndigits = 0 then fail ();
        let e = !exp10 - !frac_digits in
        let v =
          if e = 0 then !acc
          else if e > 0 then mul !acc (pow10 e)
          else div !acc (pow10 (-e))
        in
        if negative then neg v else v

  let pp ppf a = Format.pp_print_string ppf (to_string a)

  let to_hex a =
    String.concat "|" (Array.to_list (Array.map (Printf.sprintf "%h") (components a)))

  let of_hex s =
    let parts = String.split_on_char '|' s in
    if List.length parts <> terms then
      invalid_arg (Printf.sprintf "of_hex: expected %d components" terms);
    let comps =
      List.map
        (fun p ->
          match float_of_string_opt (String.trim p) with
          | Some v -> v
          | None -> invalid_arg (Printf.sprintf "of_hex: bad component %S" p))
        parts
    in
    of_components (Array.of_list comps)

  module Infix = struct
    let ( + ) = add
    let ( - ) = sub
    let ( * ) = mul
    let ( / ) = div
    let ( ~- ) = neg
    let ( = ) = equal
    let ( < ) a b = compare a b < 0
    let ( <= ) a b = compare a b <= 0
    let ( > ) a b = compare a b > 0
    let ( >= ) a b = compare a b >= 0
  end
end
