(** Three-term floating-point expansions: ~161-bit (sextuple) precision.

    Branch-free arithmetic from the reconstructed 3-term FPANs (Figures
    3 and 6 of the paper), checked against the [Fpan] interpreter and
    verified to the paper's error bounds (2^-156 relative). *)

include Ops.S

val mul_no_fma : t -> t -> t
(** The same multiplication FPAN with TwoProd realized by
    Veltkamp-Dekker splitting (17 flops instead of 2): the kernel for
    hardware without a fused multiply-add, and the subject of the
    no-FMA benchmark ablation. *)
