(** Two-term floating-point expansions: ~107-bit (quadruple) precision.

    Branch-free arithmetic built from the paper's provably optimal
    2-term FPANs (Figures 2 and 5): addition costs 6 gates (20 flops) at
    depth 4, multiplication 1 TwoProd + 2 products + 3 gates (9 flops)
    at depth 3.  The test suite checks these hand-inlined kernels
    gate-for-gate against the [Fpan] network interpreter. *)

include Ops.S

val mul_no_fma : t -> t -> t
(** The same multiplication FPAN with TwoProd realized by
    Veltkamp-Dekker splitting (17 flops instead of 2): the kernel for
    hardware without a fused multiply-add, and the subject of the
    no-FMA benchmark ablation. *)
