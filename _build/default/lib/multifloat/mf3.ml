(* Hand-inlined transcriptions of the add3/mul3 networks
   (Fpan.Networks); wire variables [wN] follow the network diagrams. *)

module K = struct
  type t = { x0 : float; x1 : float; x2 : float }

  let terms = 3
  let precision_bits = 161
  let error_exp = 156
  let zero = { x0 = 0.0; x1 = 0.0; x2 = 0.0 }
  let of_float x = { x0 = x; x1 = 0.0; x2 = 0.0 }
  let to_float a = a.x0
  let components a = [| a.x0; a.x1; a.x2 |]

  let of_components c =
    assert (Array.length c = 3);
    { x0 = c.(0); x1 = c.(1); x2 = c.(2) }

  let add_terms ax0 ax1 ax2 bx0 bx1 bx2 =
    let w0, w1 = Eft.two_sum ax0 bx0 in
    let w2, w3 = Eft.two_sum ax1 bx1 in
    let w4, w5 = Eft.two_sum ax2 bx2 in
    let w2, w1 = Eft.two_sum w2 w1 in
    let w4, w3 = Eft.two_sum w4 w3 in
    let w4, w1 = Eft.two_sum w4 w1 in
    let w3 = w3 +. w1 in
    let w3 = w3 +. w5 in
    let w4, w3 = Eft.two_sum w4 w3 in
    let w2, w4 = Eft.two_sum w2 w4 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w4, w3 = Eft.two_sum w4 w3 in
    let w2, w4 = Eft.two_sum w2 w4 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w4, w3 = Eft.two_sum w4 w3 in
    let w2, w4 = Eft.two_sum w2 w4 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w4 = w4 +. w3 in
    { x0 = w0; x1 = w2; x2 = w4 }

  let add a b = add_terms a.x0 a.x1 a.x2 b.x0 b.x1 b.x2
  let sub a b = add_terms a.x0 a.x1 a.x2 (-.b.x0) (-.b.x1) (-.b.x2)

  let mul a b =
    (* Expansion step (Section 4.2): 3 TwoProds, 3 plain products. *)
    let w0, w3 = Eft.two_prod a.x0 b.x0 in
    let w1, w7 = Eft.two_prod a.x0 b.x1 in
    let w2, w8 = Eft.two_prod a.x1 b.x0 in
    let w4 = a.x0 *. b.x2 in
    let w5 = a.x1 *. b.x1 in
    let w6 = a.x2 *. b.x0 in
    (* Accumulation FPAN (mul3). *)
    let w1, w2 = Eft.two_sum w1 w2 in
    let w1, w3 = Eft.two_sum w1 w3 in
    let w4 = w4 +. w6 in
    let w4 = w4 +. w5 in
    let w7 = w7 +. w8 in
    let w4 = w4 +. w7 in
    let w2 = w2 +. w3 in
    let w4 = w4 +. w2 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w0, w1 = Eft.two_sum w0 w1 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w0, w1 = Eft.two_sum w0 w1 in
    let w1, w4 = Eft.two_sum w1 w4 in
    { x0 = w0; x1 = w1; x2 = w4 }

  let neg a = { x0 = -.a.x0; x1 = -.a.x1; x2 = -.a.x2 }
  let add_float a f = add a (of_float f)
  let sub_float a f = add a (of_float (-.f))

  let mul_float a f =
    (* mul3 with y1 = y2 = 0: p01, p02, p11, e01 drop out. *)
    let w0, w3 = Eft.two_prod a.x0 f in
    let w2, w8 = Eft.two_prod a.x1 f in
    let w4 = a.x2 *. f in
    let w2, w3 = Eft.two_sum w2 w3 in
    let w4 = w4 +. w8 in
    let w4 = w4 +. w3 in
    let w2, w4 = Eft.two_sum w2 w4 in
    let w0, w2 = Eft.two_sum w0 w2 in
    let w2, w4 = Eft.two_sum w2 w4 in
    { x0 = w0; x1 = w2; x2 = w4 }

  let scale_pow2 a k =
    { x0 = Float.ldexp a.x0 k; x1 = Float.ldexp a.x1 k; x2 = Float.ldexp a.x2 k }

  let mul_with two_prod a b =
    let w0, w3 = two_prod a.x0 b.x0 in
    let w1, w7 = two_prod a.x0 b.x1 in
    let w2, w8 = two_prod a.x1 b.x0 in
    let w4 = a.x0 *. b.x2 in
    let w5 = a.x1 *. b.x1 in
    let w6 = a.x2 *. b.x0 in
    let w1, w2 = Eft.two_sum w1 w2 in
    let w1, w3 = Eft.two_sum w1 w3 in
    let w4 = w4 +. w6 in
    let w4 = w4 +. w5 in
    let w7 = w7 +. w8 in
    let w4 = w4 +. w7 in
    let w2 = w2 +. w3 in
    let w4 = w4 +. w2 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w0, w1 = Eft.two_sum w0 w1 in
    let w1, w4 = Eft.two_sum w1 w4 in
    let w0, w1 = Eft.two_sum w0 w1 in
    let w1, w4 = Eft.two_sum w1 w4 in
    { x0 = w0; x1 = w1; x2 = w4 }
end

include Ops.Make (K)

(* Multiplication for hardware without a fused multiply-add. *)
let mul_no_fma (a : K.t) (b : K.t) : K.t = K.mul_with Eft.two_prod_dekker a b
