(** Polynomials over MultiFloat expansions.

    Polynomial evaluation is the classic consumer of extended
    precision: Horner's rule loses one condition-number's worth of
    digits near clustered roots, which is what drives adaptive-precision
    systems (Shewchuk's predicates, the paper's §6).  Coefficients are
    stored low degree first: [c.(i)] multiplies [x^i]. *)

module Make (M : Ops.S) : sig
  type t = M.t array

  val of_float_coeffs : float array -> t
  val degree : t -> int

  val eval : t -> M.t -> M.t
  (** Horner's rule in the working precision. *)

  val eval_with_derivative : t -> M.t -> M.t * M.t
  val derivative : t -> t
  val add : t -> t -> t
  val mul : t -> t -> t

  val from_roots : M.t array -> t
  (** Monic polynomial with the given roots. *)

  val newton_root : t -> x0:M.t -> ?max_iter:int -> unit -> M.t
  (** Refine a simple root by Newton iteration from [x0] (seeded e.g.
      by a double-precision estimate). *)
end
