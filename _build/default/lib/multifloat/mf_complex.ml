module Make (M : Ops.S) = struct
  type t = { re : M.t; im : M.t }

  let zero = { re = M.zero; im = M.zero }
  let one = { re = M.one; im = M.zero }
  let i = { re = M.zero; im = M.one }
  let make re im = { re; im }
  let of_float x = { re = M.of_float x; im = M.zero }
  let conj z = { z with im = M.neg z.im }
  let add a b = { re = M.add a.re b.re; im = M.add a.im b.im }
  let sub a b = { re = M.sub a.re b.re; im = M.sub a.im b.im }
  let neg a = { re = M.neg a.re; im = M.neg a.im }

  let mul a b =
    {
      re = M.sub (M.mul a.re b.re) (M.mul a.im b.im);
      im = M.add (M.mul a.re b.im) (M.mul a.im b.re);
    }

  let norm2 z = M.add (M.mul z.re z.re) (M.mul z.im z.im)
  let abs z = M.sqrt (norm2 z)

  let div a b =
    let d = norm2 b in
    let n = mul a (conj b) in
    { re = M.div n.re d; im = M.div n.im d }

  let equal a b = M.equal a.re b.re && M.equal a.im b.im

  let to_string ?digits z =
    Printf.sprintf "%s + %si" (M.to_string ?digits z.re) (M.to_string ?digits z.im)
end

module C2 = Make (Mf2)
module C3 = Make (Mf3)
module C4 = Make (Mf4)
