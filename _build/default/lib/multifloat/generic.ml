module Make
    (B : Base.BASE)
    (N : sig
      val terms : int
    end) =
struct
  type t = B.t array

  let terms =
    assert (N.terms >= 1);
    N.terms

  let precision_bits = (terms * B.precision) + terms - 1
  let zero = Array.make terms B.zero

  let of_float x =
    let v = Array.make terms B.zero in
    v.(0) <- B.of_float x;
    v

  let one = of_float 1.0
  let to_float a = B.to_float a.(0)
  let components a = Array.map B.to_float a

  let of_components c =
    assert (Array.length c = terms);
    Array.map B.of_float c

  (* Error-free transformations in the base arithmetic. *)
  let two_sum x y =
    let s = B.add x y in
    let x_eff = B.sub s y in
    let y_eff = B.sub s x_eff in
    let dx = B.sub x x_eff in
    let dy = B.sub y y_eff in
    (s, B.add dx dy)

  let two_prod x y =
    let p = B.mul x y in
    (p, B.fma x y (B.neg p))

  (* One bottom-up VecSum pass: after it, v.(0) holds an approximation
     of the total and each v.(i+1) is the local rounding error. *)
  let vec_sum_pass v =
    for i = Array.length v - 2 downto 0 do
      let s, e = two_sum v.(i) v.(i + 1) in
      v.(i) <- s;
      v.(i + 1) <- e
    done

  (* Consolidate an arbitrary value list into a [terms]-expansion: three
     VecSum passes (the third repairs multi-level cancellation, as in
     the validated add3/add4 networks), then fold the tail into the last
     component. *)
  let consolidate v =
    vec_sum_pass v;
    vec_sum_pass v;
    vec_sum_pass v;
    let z = Array.sub v 0 terms in
    for i = terms to Array.length v - 1 do
      z.(terms - 1) <- B.add z.(terms - 1) v.(i)
    done;
    (* The tail additions can leave the last two components slightly
       overlapping; one more local fix-up keeps the invariant. *)
    if terms >= 2 then begin
      let s, e = two_sum z.(terms - 2) z.(terms - 1) in
      z.(terms - 2) <- s;
      z.(terms - 1) <- e
    end;
    z

  let add a b =
    (* Pair corresponding terms (the commutativity layer), then lay out
       sums and errors by roughly decreasing magnitude:
       [s0; s1; e0; s2; e1; ...; s_{n-1}; e_{n-2}; e_{n-1}]. *)
    let sums = Array.make terms B.zero in
    let errs = Array.make terms B.zero in
    for i = 0 to terms - 1 do
      let s, e = two_sum a.(i) b.(i) in
      sums.(i) <- s;
      errs.(i) <- e
    done;
    let v = Array.make (2 * terms) B.zero in
    let pos = ref 0 in
    let put x =
      v.(!pos) <- x;
      incr pos
    in
    put sums.(0);
    for i = 1 to terms - 1 do
      put sums.(i);
      put errs.(i - 1)
    done;
    put errs.(terms - 1);
    consolidate v

  let neg a = Array.map B.neg a
  let sub a b = add a (neg b)

  let mul a b =
    (* Full n^2 pairwise products (no magnitude cutoff), grouped by
       ascending total order i+j, products before error terms. *)
    let prods = Array.make (terms * terms) B.zero in
    let errs = Array.make (terms * terms) B.zero in
    let k = ref 0 in
    for o = 0 to (2 * terms) - 2 do
      for i = 0 to o do
        let j = o - i in
        if i < terms && j < terms then begin
          let p, e = two_prod a.(i) b.(j) in
          prods.(!k) <- p;
          errs.(!k) <- e;
          incr k
        end
      done
    done;
    consolidate (Array.append prods errs)

  let abs a = if B.to_float a.(0) < 0.0 then neg a else a
  let compare a b = Float.compare (to_float (sub a b)) 0.0
  let equal a b = compare a b = 0

  let scale_pow2 a k = Array.map (fun x -> B.ldexp x k) a

  let newton_iters =
    let rec go bits iters = if bits >= precision_bits then iters else go (2 * bits) (iters + 1) in
    go (B.precision - 1) 0

  let inv a =
    let a0 = to_float a in
    if a0 = 0.0 || Float.is_nan a0 then of_float (1.0 /. a0)
    else begin
      let x = ref [| B.div B.one a.(0) |] in
      let x = ref (Array.append !x (Array.make (terms - 1) B.zero)) in
      for _ = 1 to newton_iters do
        x := add !x (mul !x (sub one (mul a !x)))
      done;
      !x
    end

  let div b a =
    let a0 = to_float a in
    if a0 = 0.0 || Float.is_nan a0 then of_float (to_float b /. a0)
    else begin
      let t = inv a in
      let q = mul b t in
      add q (mul t (sub b (mul a q)))
    end

  let sqrt a =
    let a0 = to_float a in
    if a0 = 0.0 then zero
    else if a0 < 0.0 || Float.is_nan a0 then of_float Float.nan
    else begin
      let x = ref (Array.append [| B.div B.one (B.sqrt a.(0)) |] (Array.make (terms - 1) B.zero)) in
      for _ = 1 to newton_iters do
        x := add !x (scale_pow2 (mul !x (sub one (mul a (mul !x !x)))) (-1))
      done;
      let s = mul a !x in
      add s (scale_pow2 (mul !x (sub a (mul s s))) (-1))
    end
end
