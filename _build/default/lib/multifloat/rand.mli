(** Random extended-precision values.

    Monte-Carlo and stochastic-rounding studies at extended precision
    need uniform variates whose {e entire} mantissa is random — drawing
    a double and widening leaves the low 54/108/162 bits zero.  This
    module fills every expansion term; the Gaussian sampler is the
    Box-Muller transform evaluated in the working precision. *)

module Make (M : Ops.S) : sig
  val uniform : Random.State.t -> M.t
  (** Uniform on [0, 1) with all [precision_bits] random. *)

  val uniform_range : Random.State.t -> lo:M.t -> hi:M.t -> M.t
  val gaussian : Random.State.t -> M.t
  (** Standard normal (Box-Muller). *)
end
