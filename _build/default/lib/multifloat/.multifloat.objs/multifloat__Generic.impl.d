lib/multifloat/generic.ml: Array Base Float
