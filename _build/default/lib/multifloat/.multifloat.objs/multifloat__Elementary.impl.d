lib/multifloat/elementary.ml: Array Float Mf2 Mf3 Mf4 Ops
