lib/multifloat/elementary.mli: Mf2 Mf3 Mf4 Ops
