lib/multifloat/batch.mli: Mf2 Mf3 Mf4
