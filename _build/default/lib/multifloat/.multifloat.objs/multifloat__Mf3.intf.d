lib/multifloat/mf3.mli: Ops
