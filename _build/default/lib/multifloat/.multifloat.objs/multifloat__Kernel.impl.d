lib/multifloat/kernel.ml:
