lib/multifloat/base.ml: Float
