lib/multifloat/ops.ml: Array Buffer Bytes Char Float Format Kernel List Printf Stdlib String
