lib/multifloat/poly.mli: Ops
