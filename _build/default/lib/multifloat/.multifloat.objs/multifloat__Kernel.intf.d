lib/multifloat/kernel.mli:
