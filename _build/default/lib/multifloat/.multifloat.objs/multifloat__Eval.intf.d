lib/multifloat/eval.mli: Elementary Ops
