lib/multifloat/generic.mli: Base
