lib/multifloat/mf_complex.mli: Mf2 Mf3 Mf4 Ops
