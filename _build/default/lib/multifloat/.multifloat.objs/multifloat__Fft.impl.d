lib/multifloat/fft.ml: Array Elementary Float Mf_complex Ops
