lib/multifloat/rand.mli: Ops Random
