lib/multifloat/mf_complex.ml: Mf2 Mf3 Mf4 Ops Printf
