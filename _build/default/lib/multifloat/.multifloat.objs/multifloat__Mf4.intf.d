lib/multifloat/mf4.mli: Ops
