lib/multifloat/mf4.ml: Array Eft Float Ops
