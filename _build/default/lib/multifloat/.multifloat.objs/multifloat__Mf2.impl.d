lib/multifloat/mf2.ml: Array Eft Float Ops
