lib/multifloat/mf3.ml: Array Eft Float Ops
