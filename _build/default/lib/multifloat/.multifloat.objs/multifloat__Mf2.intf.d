lib/multifloat/mf2.mli: Ops
