lib/multifloat/eval.ml: Elementary Hashtbl List Ops Printf String
