lib/multifloat/fft.mli: Mf_complex Ops
