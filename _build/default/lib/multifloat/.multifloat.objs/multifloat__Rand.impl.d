lib/multifloat/rand.ml: Elementary Float Ops Random
