lib/multifloat/batch.ml: Array Float Mf2 Mf3 Mf4
