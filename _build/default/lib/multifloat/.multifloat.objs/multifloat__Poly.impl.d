lib/multifloat/poly.ml: Array Float Ops
