module Make (M : Ops.S) = struct
  module C = Mf_complex.Make (M)
  module F = Elementary.Make (M)

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  (* Twiddle table: w_j = e^(-2 pi i j / n) for j < n/2. *)
  let twiddles n sign =
    let half = n / 2 in
    Array.init half (fun j ->
        let angle =
          M.mul_float (M.div (F.two_pi) (M.of_int n)) (Float.of_int j *. sign)
        in
        let s, c = F.sin_cos angle in
        { C.re = c; C.im = s })

  let bit_reverse_permute (a : C.t array) =
    let n = Array.length a in
    let j = ref 0 in
    for i = 0 to n - 2 do
      if i < !j then begin
        let t = a.(i) in
        a.(i) <- a.(!j);
        a.(!j) <- t
      end;
      let m = ref (n lsr 1) in
      while !m >= 1 && !j land !m <> 0 do
        j := !j lxor !m;
        m := !m lsr 1
      done;
      j := !j lor !m
    done

  let transform sign x =
    let n = Array.length x in
    if not (is_pow2 n) then invalid_arg "Fft: length must be a power of two";
    let a = Array.copy x in
    if n > 1 then begin
      bit_reverse_permute a;
      let w = twiddles n sign in
      let len = ref 2 in
      while !len <= n do
        let half = !len / 2 in
        let stride = n / !len in
        let i = ref 0 in
        while !i < n do
          for j = 0 to half - 1 do
            let u = a.(!i + j) in
            let t = C.mul w.(j * stride) a.(!i + j + half) in
            a.(!i + j) <- C.add u t;
            a.(!i + j + half) <- C.sub u t
          done;
          i := !i + !len
        done;
        len := !len * 2
      done
    end;
    a

  let fft x = transform (-1.0) x

  let ifft x =
    let n = Array.length x in
    let a = transform 1.0 x in
    let inv_n = M.inv (M.of_int n) in
    Array.map (fun z -> { C.re = M.mul z.C.re inv_n; C.im = M.mul z.C.im inv_n }) a

  let dft_naive x =
    let n = Array.length x in
    Array.init n (fun k ->
        let acc = ref C.zero in
        for j = 0 to n - 1 do
          let angle =
            M.mul_float (M.div F.two_pi (M.of_int n)) (-.Float.of_int (j * k mod n))
          in
          let s, c = F.sin_cos angle in
          acc := C.add !acc (C.mul x.(j) { C.re = c; C.im = s })
        done;
        !acc)

  let convolve x y =
    let n = Array.length x in
    assert (Array.length y = n);
    let lift v = Array.map (fun r -> { C.re = r; C.im = M.zero }) v in
    let fx = fft (lift x) and fy = fft (lift y) in
    let prod = Array.init n (fun i -> C.mul fx.(i) fy.(i)) in
    Array.map (fun z -> z.C.re) (ifft prod)
end
