module Make (M : Ops.S) = struct
  type t = M.t array

  let of_float_coeffs = Array.map M.of_float
  let degree c = Array.length c - 1

  let eval c x =
    let n = Array.length c in
    if n = 0 then M.zero
    else begin
      let acc = ref c.(n - 1) in
      for i = n - 2 downto 0 do
        acc := M.add (M.mul !acc x) c.(i)
      done;
      !acc
    end

  let derivative c =
    let n = Array.length c in
    if n <= 1 then [| M.zero |]
    else Array.init (n - 1) (fun i -> M.mul (M.of_int (i + 1)) c.(i + 1))

  let eval_with_derivative c x =
    (* Horner for the value and the derivative simultaneously. *)
    let n = Array.length c in
    if n = 0 then (M.zero, M.zero)
    else begin
      let p = ref c.(n - 1) in
      let d = ref M.zero in
      for i = n - 2 downto 0 do
        d := M.add (M.mul !d x) !p;
        p := M.add (M.mul !p x) c.(i)
      done;
      (!p, !d)
    end

  let add a b =
    let n = max (Array.length a) (Array.length b) in
    Array.init n (fun i ->
        let va = if i < Array.length a then a.(i) else M.zero in
        let vb = if i < Array.length b then b.(i) else M.zero in
        M.add va vb)

  let mul a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then [||]
    else begin
      let out = Array.make (la + lb - 1) M.zero in
      for i = 0 to la - 1 do
        for j = 0 to lb - 1 do
          out.(i + j) <- M.add out.(i + j) (M.mul a.(i) b.(j))
        done
      done;
      out
    end

  let from_roots roots =
    Array.fold_left (fun acc r -> mul acc [| M.neg r; M.one |]) [| M.one |] roots

  let newton_root c ~x0 ?(max_iter = 60) () =
    let x = ref x0 in
    let i = ref 0 in
    let continue = ref true in
    while !continue && !i < max_iter do
      let p, d = eval_with_derivative c !x in
      if M.is_zero p || M.is_zero d then continue := false
      else begin
        let step = M.div p d in
        x := M.sub !x step;
        if
          Float.abs (M.to_float step)
          <= Float.abs (M.to_float !x) *. Float.ldexp 1.0 (-(M.precision_bits + 2))
        then continue := false
      end;
      incr i
    done;
    !x
end
