(** Elementary transcendental functions over MultiFloat expansions.

    The QD library (the paper's closest baseline) ships exp/log/trig
    alongside its arithmetic, and downstream scientific code expects
    them, so this module completes the MultiFloat API in the same way:
    argument reduction against 215-bit constants, Taylor kernels with
    precomputed inverse-factorial tables, and Newton inversion for the
    inverse functions (each iteration doubling accuracy on top of the
    53-bit libm seed).

    Accuracy: results are within a few units of the last expansion term
    (the test suite pins ~[precision_bits - 10] relative bits against
    identity-based checks and the software FPU).  Trigonometric argument
    reduction is accurate for |x| up to ~2^40; beyond that the reduced
    argument loses the difference in bits, as in QD. *)

module Make (M : Ops.S) : sig
  val pi : M.t
  val two_pi : M.t
  val half_pi : M.t
  val quarter_pi : M.t
  val e : M.t
  val ln2 : M.t
  val ln10 : M.t
  val sqrt2 : M.t

  val exp : M.t -> M.t
  val log : M.t -> M.t
  (** Natural logarithm; NaN for negative input, -inf at 0. *)

  val log2 : M.t -> M.t
  val log10 : M.t -> M.t
  val pow : M.t -> M.t -> M.t
  (** [pow x y = exp (y log x)] for positive [x]; integer exponents are
      handled exactly via {!Ops.S.pow_int} when [y] is a small integer. *)

  val sin : M.t -> M.t
  val cos : M.t -> M.t
  val sin_cos : M.t -> M.t * M.t
  val tan : M.t -> M.t
  val atan : M.t -> M.t
  val atan2 : M.t -> M.t -> M.t
  val asin : M.t -> M.t
  val acos : M.t -> M.t
  val sinh : M.t -> M.t
  val cosh : M.t -> M.t
  val tanh : M.t -> M.t
end

module F2 : module type of Make (Mf2)
module F3 : module type of Make (Mf3)
module F4 : module type of Make (Mf4)
