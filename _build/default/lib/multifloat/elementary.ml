(* Elementary functions by argument reduction + Taylor kernels +
   Newton inversion.  Constants are 4-term expansions (good to ~2^-215)
   generated offline with the Bigfloat substrate; each instantiation
   truncates them to its own expansion length (truncation preserves the
   nonoverlapping invariant). *)

let pi_c = [| 0x1.921fb54442d18p+1; 0x1.1a62633145c07p-53; -0x1.f1976b7ed8fbcp-109; 0x1.4cf98e804177dp-163 |]
let half_pi_c = [| 0x1.921fb54442d18p+0; 0x1.1a62633145c07p-54; -0x1.f1976b7ed8fbcp-110; 0x1.4cf98e804177dp-164 |]
let quarter_pi_c = [| 0x1.921fb54442d18p-1; 0x1.1a62633145c07p-55; -0x1.f1976b7ed8fbcp-111; 0x1.4cf98e804177dp-165 |]
let two_pi_c = [| 0x1.921fb54442d18p+2; 0x1.1a62633145c07p-52; -0x1.f1976b7ed8fbcp-108; 0x1.4cf98e804177dp-162 |]
let ln2_c = [| 0x1.62e42fefa39efp-1; 0x1.abc9e3b39803fp-56; 0x1.7b57a079a1934p-111; -0x1.ace93a4ebe5d1p-165 |]
let ln10_c = [| 0x1.26bb1bbb55516p+1; -0x1.f48ad494ea3e9p-53; -0x1.9ebae3ae0260cp-107; -0x1.2d10378be1cf1p-161 |]
let e_c = [| 0x1.5bf0a8b145769p+1; 0x1.4d57ee2b1013ap-53; -0x1.618713a31d3e2p-109; 0x1.c5a6d2b53c26dp-163 |]
let sqrt2_c = [| 0x1.6a09e667f3bcdp+0; -0x1.bdd3413b26456p-54; 0x1.57d3e3adec175p-108; 0x1.2775099da2f59p-164 |]

module Make (M : Ops.S) = struct
  let const c = M.of_components (Array.sub c 0 M.terms)
  let pi = const pi_c
  let two_pi = const two_pi_c
  let half_pi = const half_pi_c
  let quarter_pi = const quarter_pi_c
  let e = const e_c
  let ln2 = const ln2_c
  let ln10 = const ln10_c
  let sqrt2 = const sqrt2_c

  (* 1/k! for k = 0 .. 63, computed once at the working precision. *)
  let inv_fact =
    let t = Array.make 64 M.one in
    for k = 2 to 63 do
      t.(k) <- M.div t.(k - 1) (M.of_int k)
    done;
    t

  (* Series cutoff: one extra term beyond the working precision. *)
  let eps_exp = -(M.precision_bits + 8)

  let negligible term scale =
    let t = M.to_float term and s = M.to_float scale in
    t = 0.0 || Float.abs t <= Float.abs s *. Float.ldexp 1.0 eps_exp

  (* exp on a reduced argument |r| <= ln2 / 2^(m+1), m halvings applied
     by the caller via repeated squaring. *)
  let exp_taylor r =
    let sum = ref (M.add M.one r) in
    let p = ref r in
    let k = ref 2 in
    let continue = ref true in
    while !continue && !k < 64 do
      p := M.mul !p r;
      let term = M.mul !p inv_fact.(!k) in
      sum := M.add !sum term;
      if negligible term !sum then continue := false;
      incr k
    done;
    !sum

  let exp x =
    let xf = M.to_float x in
    if Float.is_nan xf then M.of_float Float.nan
    else if xf > 709.0 then M.of_float Float.infinity
    else if xf < -745.0 then M.zero
    else begin
      (* x = k ln2 + r, then r halved m times: exp x = (exp r')^(2^m) 2^k *)
      let k = Float.to_int (Float.round (xf /. 0.6931471805599453)) in
      let r = M.sub x (M.mul_float ln2 (Float.of_int k)) in
      let m = 6 in
      let r' = M.scale_pow2 r (-m) in
      let s = ref (exp_taylor r') in
      for _ = 1 to m do
        s := M.mul !s !s
      done;
      M.scale_pow2 !s k
    end

  let newton_iters =
    let rec go bits iters = if bits >= M.precision_bits then iters else go (2 * bits) (iters + 1) in
    go 50 0

  let log x =
    let xf = M.to_float x in
    if Float.is_nan xf || xf < 0.0 then M.of_float Float.nan
    else if xf = 0.0 then M.of_float Float.neg_infinity
    else begin
      (* Newton on exp: y <- y + x exp(-y) - 1. *)
      let y = ref (M.of_float (Float.log xf)) in
      for _ = 1 to newton_iters do
        y := M.add !y (M.sub (M.mul x (exp (M.neg !y))) M.one)
      done;
      !y
    end

  let log2 x = M.div (log x) ln2
  let log10 x = M.div (log x) ln10

  let pow x y =
    let yf = M.to_float y in
    let yi = Float.to_int yf in
    if Float.is_integer yf && Float.abs yf < 1e9 && M.equal y (M.of_int yi) then M.pow_int x yi
    else exp (M.mul y (log x))

  (* sin/cos Taylor kernels on |r| <= pi/4. *)
  let sin_taylor r =
    let r2 = M.mul r r in
    let sum = ref r in
    let p = ref r in
    let k = ref 3 in
    let continue = ref true in
    while !continue && !k < 64 do
      p := M.mul !p r2;
      let term = M.mul !p inv_fact.(!k) in
      sum := (if !k land 2 = 2 then M.sub !sum term else M.add !sum term);
      if negligible term (if M.is_zero !sum then M.one else !sum) then continue := false;
      k := !k + 2
    done;
    !sum

  let cos_taylor r =
    let r2 = M.mul r r in
    let sum = ref M.one in
    let p = ref M.one in
    let k = ref 2 in
    let continue = ref true in
    while !continue && !k < 64 do
      p := M.mul !p r2;
      let term = M.mul !p inv_fact.(!k) in
      sum := (if !k land 2 = 2 then M.sub !sum term else M.add !sum term);
      if negligible term !sum then continue := false;
      k := !k + 2
    done;
    !sum

  (* Reduce x = k * (pi/2) + r with |r| <= pi/4; returns (k mod 4, r). *)
  let reduce_half_pi x =
    let xf = M.to_float x in
    let k = Float.round (xf /. 1.5707963267948966) in
    let r = M.sub x (M.mul_float half_pi k) in
    (* One correction step in case the float estimate was off by one. *)
    let k, r =
      if M.compare r quarter_pi > 0 then (k +. 1.0, M.sub r half_pi)
      else if M.compare r (M.neg quarter_pi) < 0 then (k -. 1.0, M.add r half_pi)
      else (k, r)
    in
    let q = Float.to_int (k -. (Float.round (k /. 4.0) *. 4.0)) in
    ((q + 4) mod 4, r)

  let sin_cos x =
    let xf = M.to_float x in
    if Float.is_nan xf || Float.abs xf = Float.infinity then
      (M.of_float Float.nan, M.of_float Float.nan)
    else begin
      let q, r = reduce_half_pi x in
      let s = sin_taylor r and c = cos_taylor r in
      match q with
      | 0 -> (s, c)
      | 1 -> (c, M.neg s)
      | 2 -> (M.neg s, M.neg c)
      | _ -> (M.neg c, s)
    end

  let sin x = fst (sin_cos x)
  let cos x = snd (sin_cos x)

  let tan x =
    let s, c = sin_cos x in
    M.div s c

  let atan x =
    let xf = M.to_float x in
    if Float.is_nan xf then x
    else if xf = Float.infinity then half_pi
    else if xf = Float.neg_infinity then M.neg half_pi
    else begin
      (* Newton on tan: t <- t + (x cos t - sin t) cos t. *)
      let t = ref (M.of_float (Float.atan xf)) in
      for _ = 1 to newton_iters do
        let s, c = sin_cos !t in
        t := M.add !t (M.mul (M.sub (M.mul x c) s) c)
      done;
      !t
    end

  let atan2 y x =
    let yf = M.to_float y and xf = M.to_float x in
    if Float.is_nan yf || Float.is_nan xf then M.of_float Float.nan
    else if xf = 0.0 && yf = 0.0 then M.zero
    else if xf = 0.0 then if yf > 0.0 then half_pi else M.neg half_pi
    else begin
      let base = atan (M.div y x) in
      if xf > 0.0 then base
      else if yf >= 0.0 then M.add base pi
      else M.sub base pi
    end

  let asin x =
    let xf = M.to_float x in
    if Float.abs xf > 1.0 then M.of_float Float.nan
    else if M.equal x M.one then half_pi
    else if M.equal x (M.neg M.one) then M.neg half_pi
    else atan (M.div x (M.sqrt (M.sub M.one (M.mul x x))))

  let acos x = M.sub half_pi (asin x)

  let sinh x =
    let xf = M.to_float x in
    if Float.abs xf < 0.5 then begin
      (* Taylor: avoids the cancellation in (exp x - exp -x)/2. *)
      let x2 = M.mul x x in
      let sum = ref x in
      let p = ref x in
      let k = ref 3 in
      let continue = ref true in
      while !continue && !k < 64 do
        p := M.mul !p x2;
        let term = M.mul !p inv_fact.(!k) in
        sum := M.add !sum term;
        if negligible term !sum then continue := false;
        k := !k + 2
      done;
      !sum
    end
    else begin
      let ex = exp x in
      M.scale_pow2 (M.sub ex (M.inv ex)) (-1)
    end

  let cosh x =
    let ex = exp x in
    M.scale_pow2 (M.add ex (M.inv ex)) (-1)

  let tanh x =
    let xf = M.to_float x in
    if Float.abs xf > 300.0 then M.of_float (if xf > 0.0 then 1.0 else -1.0)
    else begin
      let s = sinh x in
      M.div s (M.sqrt (M.add M.one (M.mul s s)))
    end
end

module F2 = Make (Mf2)
module F3 = Make (Mf3)
module F4 = Make (Mf4)
