(** Complex arithmetic over MultiFloat expansions.

    Section 4.2 of the paper motivates the commutativity layer of the
    multiplication FPANs with complex arithmetic: without commutative
    multiplication, the conjugate product [(a+bi)(a-bi)] acquires a
    small nonzero imaginary part ([ab - ba] evaluated by an asymmetric
    algorithm), which creates rounding artifacts in eigensolvers.  With
    our FPANs, [mul a b] and [mul b a] are bit-identical, so the
    imaginary part of a conjugate product is {e exactly} zero — the
    property the test suite pins down. *)

module Make (M : Ops.S) : sig
  type t = {
    re : M.t;
    im : M.t;
  }

  val zero : t
  val one : t
  val i : t
  val make : M.t -> M.t -> t
  val of_float : float -> t
  val conj : t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val norm2 : t -> M.t
  (** Squared magnitude [re^2 + im^2]. *)

  val abs : t -> M.t
  val equal : t -> t -> bool
  val to_string : ?digits:int -> t -> string
end

module C2 : module type of Make (Mf2)
module C3 : module type of Make (Mf3)
module C4 : module type of Make (Mf4)
