(* Expression evaluation over MultiFloat arithmetic: the engine behind
   bin/mf_calc, exposed as a library so applications can accept
   user-supplied formulas at extended precision. *)

module Make (M : Ops.S) (F : module type of Elementary.Make (M)) = struct
  (* Recursive-descent parser over a token list. *)
  type token =
    | Num of string
    | Op of char
    | Lparen
    | Rparen
    | Ident of string

  exception Parse_error of string

  let tokenize s =
    let n = String.length s in
    let out = ref [] in
    let i = ref 0 in
    while !i < n do
      let c = s.[!i] in
      if c = ' ' || c = '\t' || c = '\n' then incr i
      else if (c >= '0' && c <= '9') || c = '.' then begin
        let j = ref !i in
        let accept_sign = ref false in
        while
          !j < n
          &&
          match s.[!j] with
          | '0' .. '9' | '.' | '_' -> true
          | 'e' | 'E' ->
              accept_sign := true;
              true
          | '+' | '-' when !accept_sign && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E') -> true
          | _ -> false
        do
          incr j
        done;
        out := Num (String.sub s !i (!j - !i)) :: !out;
        i := !j
      end
      else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then begin
        let j = ref !i in
        while !j < n && ((s.[!j] >= 'a' && s.[!j] <= 'z') || (s.[!j] >= 'A' && s.[!j] <= 'Z')) do
          incr j
        done;
        out := Ident (String.lowercase_ascii (String.sub s !i (!j - !i))) :: !out;
        i := !j
      end
      else
        match c with
        | '+' | '-' | '*' | '/' | '^' ->
            out := Op c :: !out;
            incr i
        | '(' ->
            out := Lparen :: !out;
            incr i
        | ')' ->
            out := Rparen :: !out;
            incr i
        | _ -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
    done;
    List.rev !out

  (* Variable environment used by eval_with. *)
  let env : (string, M.t) Hashtbl.t = Hashtbl.create 8

  (* expr := term (('+'|'-') term)*
     term := factor (('*'|'/') factor)*
     factor := atom ('^' int)?
     atom := number | ident '(' expr ')' | '(' expr ')' | '-' atom *)
  let rec parse_expr toks =
    let lhs, toks = parse_term toks in
    let rec loop acc toks =
      match toks with
      | Op '+' :: rest ->
          let rhs, rest = parse_term rest in
          loop (M.add acc rhs) rest
      | Op '-' :: rest ->
          let rhs, rest = parse_term rest in
          loop (M.sub acc rhs) rest
      | _ -> (acc, toks)
    in
    loop lhs toks

  and parse_term toks =
    let lhs, toks = parse_factor toks in
    let rec loop acc toks =
      match toks with
      | Op '*' :: rest ->
          let rhs, rest = parse_factor rest in
          loop (M.mul acc rhs) rest
      | Op '/' :: rest ->
          let rhs, rest = parse_factor rest in
          loop (M.div acc rhs) rest
      | _ -> (acc, toks)
    in
    loop lhs toks

  and parse_factor toks =
    let base, toks = parse_atom toks in
    match toks with
    | Op '^' :: Num k :: rest ->
        let k = try int_of_string k with _ -> raise (Parse_error "exponent must be an integer") in
        (M.pow_int base k, rest)
    | Op '^' :: Op '-' :: Num k :: rest ->
        let k = try int_of_string k with _ -> raise (Parse_error "exponent must be an integer") in
        (M.pow_int base (-k), rest)
    | Op '^' :: _ -> raise (Parse_error "exponent must be an integer literal")
    | _ -> (base, toks)

  and parse_atom toks =
    match toks with
    | Num s :: rest -> (M.of_string s, rest)
    | Op '-' :: rest ->
        let v, rest = parse_atom rest in
        (M.neg v, rest)
    | Ident "pi" :: rest -> (F.pi, rest)
    | Ident "e" :: rest -> (F.e, rest)
    | Ident v :: rest when Hashtbl.mem env v -> (Hashtbl.find env v, rest)
    | Ident f :: Lparen :: rest ->
        let v, rest = parse_expr rest in
        let rest = match rest with Rparen :: r -> r | _ -> raise (Parse_error "expected )") in
        let fv =
          match f with
          | "sqrt" -> M.sqrt v
          | "abs" -> M.abs v
          | "inv" -> M.inv v
          | "exp" -> F.exp v
          | "log" | "ln" -> F.log v
          | "log2" -> F.log2 v
          | "log10" -> F.log10 v
          | "sin" -> F.sin v
          | "cos" -> F.cos v
          | "tan" -> F.tan v
          | "atan" -> F.atan v
          | "asin" -> F.asin v
          | "acos" -> F.acos v
          | "sinh" -> F.sinh v
          | "cosh" -> F.cosh v
          | "tanh" -> F.tanh v
          | "floor" -> M.floor v
          | "ceil" -> M.ceil v
          | "round" -> M.round v
          | _ -> raise (Parse_error (Printf.sprintf "unknown function %s" f))
        in
        (fv, rest)
    | Lparen :: rest ->
        let v, rest = parse_expr rest in
        let rest = match rest with Rparen :: r -> r | _ -> raise (Parse_error "expected )") in
        (v, rest)
    | _ -> raise (Parse_error "expected a value")

  let eval s =
    Hashtbl.reset env;
    let v, rest = parse_expr (tokenize s) in
    if rest <> [] then raise (Parse_error "trailing input");
    v

  let eval_with ~vars s =
    Hashtbl.reset env;
    List.iter (fun (name, value) -> Hashtbl.replace env (String.lowercase_ascii name) value) vars;
    let v, rest = parse_expr (tokenize s) in
    Hashtbl.reset env;
    if rest <> [] then raise (Parse_error "trailing input");
    v

  let run digits s =
    match eval s with
    | v ->
        print_endline (M.to_string ?digits v);
        0
    | exception Parse_error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        1
    | exception Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        1
end

