module Make (M : Ops.S) = struct
  module F = Elementary.Make (M)

  (* Uniform in [0,1): accumulate 52-bit random blocks at descending
     scales; each block is exact as a double, the running sum is a
     valid expansion by construction. *)
  let uniform st =
    let acc = ref M.zero in
    let shift = ref 0 in
    while !shift < M.precision_bits + 8 do
      let block = Float.of_int (Random.State.full_int st (1 lsl 52)) in
      acc := M.add_float !acc (Float.ldexp block (-(!shift + 52)));
      shift := !shift + 52
    done;
    !acc

  let uniform_range st ~lo ~hi = M.add lo (M.mul (uniform st) (M.sub hi lo))

  (* Box-Muller; u1 is kept away from 0 so log stays finite. *)
  let gaussian st =
    let u1 = M.add (uniform st) (M.scale_pow2 M.one (-(M.precision_bits + 4))) in
    let u2 = uniform st in
    let r = M.sqrt (M.mul_float (F.log u1) (-2.0)) in
    M.mul r (F.cos (M.mul F.two_pi u2))
end
