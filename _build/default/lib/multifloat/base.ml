(** Base floating-point types for the generic MultiFloat functor.

    The paper's C++ library is a template [MultiFloat<T, N>] over an
    underlying type [T]; this is the OCaml rendering of that design.  A
    [BASE] supplies correctly-rounded scalar arithmetic (including a
    fused multiply-add, from which TwoProd is built) at some precision
    [p]; {!Generic.Make} lifts it to [N]-term expansions.

    [Double] is native IEEE binary64; an emulated binary32 lives in the
    [f32] library (kept separate so this library has no dependency on
    it). *)

module type BASE = sig
  type t = float
  (** Values are stored in OCaml floats; an implementation guarantees
      every value it produces is representable in its own precision
      (e.g. the binary32 base keeps every value on the binary32 grid). *)

  val name : string

  val precision : int
  (** Mantissa bits, including the implicit leading bit (53 for binary64,
      24 for binary32). *)

  val zero : t
  val one : t
  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val sqrt : t -> t
  val neg : t -> t
  val fma : t -> t -> t -> t
  val ldexp : t -> int -> t
end

module Double : BASE = struct
  type t = float

  let name = "binary64"
  let precision = 53
  let zero = 0.0
  let one = 1.0
  let of_float x = x
  let to_float x = x
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let sqrt = Float.sqrt
  let neg x = -.x
  let fma = Float.fma
  let ldexp = Float.ldexp
end
