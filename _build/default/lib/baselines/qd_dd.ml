(* Double-double after the QD library's dd_real. *)

type t = { hi : float; lo : float }

let zero = { hi = 0.0; lo = 0.0 }
let one = { hi = 1.0; lo = 0.0 }
let of_float x = { hi = x; lo = 0.0 }
let to_float a = a.hi
let components a = [| a.hi; a.lo |]

(* QD ieee_add: accurate on all inputs. *)
let add a b =
  let s1, s2 = Eft.two_sum a.hi b.hi in
  let t1, t2 = Eft.two_sum a.lo b.lo in
  let s2 = s2 +. t1 in
  let s1, s2 = Eft.fast_two_sum s1 s2 in
  let s2 = s2 +. t2 in
  let hi, lo = Eft.fast_two_sum s1 s2 in
  { hi; lo }

(* QD sloppy_add: only valid when no catastrophic cancellation occurs. *)
let sloppy_add a b =
  let s, e = Eft.two_sum a.hi b.hi in
  let e = e +. (a.lo +. b.lo) in
  let hi, lo = Eft.fast_two_sum s e in
  { hi; lo }

let neg a = { hi = -.a.hi; lo = -.a.lo }
let sub a b = add a (neg b)

let mul a b =
  let p, e = Eft.two_prod a.hi b.hi in
  let e = e +. ((a.hi *. b.lo) +. (a.lo *. b.hi)) in
  let hi, lo = Eft.fast_two_sum p e in
  { hi; lo }

let mul_float a f =
  let p, e = Eft.two_prod a.hi f in
  let e = e +. (a.lo *. f) in
  let hi, lo = Eft.fast_two_sum p e in
  { hi; lo }

(* QD's accurate division: three quotient corrections. *)
let div a b =
  if b.hi = 0.0 then of_float (a.hi /. b.hi)
  else begin
    let q1 = a.hi /. b.hi in
    let r = sub a (mul_float b q1) in
    let q2 = r.hi /. b.hi in
    let r = sub r (mul_float b q2) in
    let q3 = r.hi /. b.hi in
    let q1, q2 = Eft.fast_two_sum q1 q2 in
    add { hi = q1; lo = q2 } (of_float q3)
  end

let sqrt a =
  if a.hi = 0.0 then zero
  else if a.hi < 0.0 then of_float Float.nan
  else begin
    (* One Newton correction on the double-precision square root
       (Karp & Markstein). *)
    let x = 1.0 /. Float.sqrt a.hi in
    let ax = a.hi *. x in
    let err = sub a (mul (of_float ax) (of_float ax)) in
    let correction = err.hi *. (x *. 0.5) in
    let hi, lo = Eft.fast_two_sum ax correction in
    { hi; lo }
  end

let compare a b =
  let c = Float.compare a.hi b.hi in
  if c <> 0 then c else Float.compare a.lo b.lo
