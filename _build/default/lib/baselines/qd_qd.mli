(** Quad-double arithmetic in the style of the QD library's [qd_real]:
    ~212-bit precision from four doubles, using the {e branching}
    renormalization of Hida, Li & Bailey.

    This is the 208-bit "QD" baseline of the paper's benchmarks.  The
    data-dependent branches in {!renorm} (zero tests after every
    FastTwoSum) and the magnitude-sorting merge inside {!add} are
    exactly the control flow that defeats vectorization and makes this
    class of algorithm slow on data-parallel hardware — the performance
    thesis the benchmarks test. *)

type t = {
  a0 : float;
  a1 : float;
  a2 : float;
  a3 : float;
}

val zero : t
val one : t
val of_float : float -> t
val to_float : t -> float
val components : t -> float array
val of_components : float array -> t
val renorm : float -> float -> float -> float -> float -> t
(** Branching five-to-four renormalization. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val sqrt : t -> t
val neg : t -> t
val compare : t -> t -> int
