(** Double-double arithmetic in the style of the QD library
    (Hida, Li & Bailey, "Algorithms for quad-double precision floating
    point arithmetic", ARITH-15, 2001).

    This is the repository's reimplementation of the 103-bit baseline
    the paper benchmarks as "QD": the classic [dd_real] algorithms,
    including both the cheap [sloppy_add] (incorrect on cancellation)
    and the accurate [ieee_add].  The default {!add} is the accurate
    variant, mirroring how QD is benchmarked in the paper. *)

type t = {
  hi : float;
  lo : float;
}

val zero : t
val one : t
val of_float : float -> t
val to_float : t -> float
val components : t -> float array
val add : t -> t -> t
(** QD's accurate [ieee_add]. *)

val sloppy_add : t -> t -> t
(** QD's [sloppy_add]: faster, but loses precision when the leading
    terms cancel — the class of bug the paper's verified FPANs rule
    out.  Exposed for the accuracy-comparison experiment. *)

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val sqrt : t -> t
val neg : t -> t
val compare : t -> t -> int
