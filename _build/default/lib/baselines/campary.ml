(* Certified expansion arithmetic after CAMPARY. *)

type t = float array

let of_float ~n x =
  let v = Array.make n 0.0 in
  v.(0) <- x;
  v

let zero ~n = Array.make n 0.0
let to_float (a : t) = a.(0)
let terms (a : t) = Array.length a
let neg a = Array.map Float.neg a

(* VecSum: one bottom-up TwoSum chain; index 0 ends up holding the
   rounded total, later slots hold errors by decreasing position. *)
let vec_sum v =
  for i = Array.length v - 2 downto 0 do
    let s, e = Eft.two_sum v.(i) v.(i + 1) in
    v.(i) <- s;
    v.(i + 1) <- e
  done

(* VecSumErrBranch: compact the error chain into at most [n]
   components, skipping zeros — the certified renormalization's
   characteristic data-dependent loop. *)
let vec_sum_err_branch v n =
  let m = Array.length v in
  let out = Array.make n 0.0 in
  let j = ref 0 in
  let eps = ref v.(0) in
  let i = ref 1 in
  while !i < m && !j < n do
    let r, e = Eft.fast_two_sum !eps v.(!i) in
    if e <> 0.0 then begin
      out.(!j) <- r;
      incr j;
      eps := e
    end
    else eps := r;
    incr i
  done;
  if !j < n && !eps <> 0.0 then out.(!j) <- !eps;
  out

let renormalize xs n =
  let v = Array.copy xs in
  vec_sum v;
  vec_sum_err_branch v n

(* Merge two expansions by decreasing magnitude (branchy). *)
let merge (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0.0 in
  let i = ref 0 and j = ref 0 in
  for k = 0 to la + lb - 1 do
    if !i < la && (!j >= lb || Float.abs a.(!i) >= Float.abs b.(!j)) then begin
      out.(k) <- a.(!i);
      incr i
    end
    else begin
      out.(k) <- b.(!j);
      incr j
    end
  done;
  out

let add a b =
  let n = Array.length a in
  assert (Array.length b = n);
  renormalize (merge a b) n

let sub a b = add a (neg b)

(* Certified multiplication: truncated error-free products (the same
   cutoff as the paper's Section 4.2), sorted by magnitude, then
   renormalized. *)
let mul a b =
  let n = Array.length a in
  assert (Array.length b = n);
  let parts = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i + j < n then begin
        if i + j <= n - 2 then begin
          let p, e = Eft.two_prod a.(i) b.(j) in
          parts := p :: e :: !parts
        end
        else parts := (a.(i) *. b.(j)) :: !parts
      end
    done
  done;
  let arr = Array.of_list !parts in
  (* Sort by decreasing magnitude: O(m log m) compares and branches. *)
  Array.sort (fun x y -> Float.compare (Float.abs y) (Float.abs x)) arr;
  renormalize arr n

let compare a b =
  let d = add a (neg b) in
  Float.compare d.(0) 0.0
