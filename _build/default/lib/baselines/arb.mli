(** Ball (midpoint-radius interval) arithmetic over {!Bigfloat} — the
    architectural stand-in for FLINT/Arb, one of the libraries the
    paper benchmarks (its reference [27] is Arb's midpoint-radius
    interval arithmetic).

    A ball [m ± r] encloses every real it claims to represent: each
    operation computes the midpoint with round-to-nearest and pushes
    all rounding and propagation error into the radius using the
    directed-rounding modes, so enclosure is an invariant, not a
    heuristic.  The radius is tracked at low precision (30 bits),
    rounded upward. *)

type t = {
  mid : Bigfloat.t;
  rad : Bigfloat.t;  (** nonnegative; 30-bit, rounded upward *)
}

val of_float : prec:int -> float -> t
(** Exact ball (radius 0). *)

val of_string : prec:int -> string -> t
(** Ball enclosing the decimal (radius one ulp of the parse). *)

val make : mid:Bigfloat.t -> rad:Bigfloat.t -> t
val mid : t -> Bigfloat.t
val rad : t -> Bigfloat.t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Diverges to an infinite radius if the divisor ball contains 0. *)

val sqrt : t -> t
val neg : t -> t

val contains_float : t -> float -> bool
val contains : t -> Bigfloat.t -> bool
val radius_le : t -> float -> bool

val to_string : ?digits:int -> t -> string
(** Rendered as [mid +/- rad]. *)
