(* Quad-double after the QD library's qd_real: fixed accumulation
   chains plus a branching renormalization. *)

type t = { a0 : float; a1 : float; a2 : float; a3 : float }

let zero = { a0 = 0.0; a1 = 0.0; a2 = 0.0; a3 = 0.0 }
let one = { a0 = 1.0; a1 = 0.0; a2 = 0.0; a3 = 0.0 }
let of_float x = { a0 = x; a1 = 0.0; a2 = 0.0; a3 = 0.0 }
let to_float a = a.a0
let components a = [| a.a0; a.a1; a.a2; a.a3 |]

let of_components c =
  assert (Array.length c = 4);
  { a0 = c.(0); a1 = c.(1); a2 = c.(2); a3 = c.(3) }

(* Branching renormalization (QD's renorm): a FastTwoSum sweep down,
   then a compaction sweep that skips zero error terms — the
   data-dependent branches characteristic of this baseline. *)
let renorm c0 c1 c2 c3 c4 =
  let s, e4 = Eft.fast_two_sum c3 c4 in
  let s, e3 = Eft.fast_two_sum c2 s in
  let s, e2 = Eft.fast_two_sum c1 s in
  let s, e1 = Eft.fast_two_sum c0 s in
  let out = [| 0.0; 0.0; 0.0; 0.0 |] in
  let k = ref 0 in
  let acc = ref s in
  List.iter
    (fun t ->
      if !k < 4 then begin
        let s', e = Eft.fast_two_sum !acc t in
        if e <> 0.0 then begin
          out.(!k) <- s';
          incr k;
          acc := e
        end
        else acc := s'
      end)
    [ e1; e2; e3; e4 ];
  if !k < 4 then out.(!k) <- !acc;
  { a0 = out.(0); a1 = out.(1); a2 = out.(2); a3 = out.(3) }

(* Merge the eight components of two quad-doubles by decreasing
   magnitude (the branchy part of QD's accurate addition). *)
let merge8 a b =
  let out = Array.make 8 0.0 in
  let xa = components a and xb = components b in
  let i = ref 0 and j = ref 0 in
  for k = 0 to 7 do
    if !i < 4 && (!j >= 4 || Float.abs xa.(!i) >= Float.abs xb.(!j)) then begin
      out.(k) <- xa.(!i);
      incr i
    end
    else begin
      out.(k) <- xb.(!j);
      incr j
    end
  done;
  out

(* quick_three_accum: absorb the next (smaller) merged value [t] into
   the two-register accumulator (u, v).  When both error registers stay
   nonzero the top term is finished and is emitted. *)
let quick_three_accum u v t =
  let s1, t' = Eft.two_sum v t in
  let s2, v' = Eft.two_sum u s1 in
  if v' <> 0.0 && t' <> 0.0 then (Some s2, v', t')
  else if t' = 0.0 then (None, s2, v')
  else (None, s2, t')

(* QD's accurate (ieee) addition: merge by magnitude, then accumulate
   through the carry chain with zero-skipping branches. *)
let add a b =
  let m = merge8 a b in
  let out = Array.make 4 0.0 in
  let k = ref 0 in
  let u = ref m.(0) and v = ref m.(1) in
  let u', v' = Eft.fast_two_sum !u !v in
  u := u';
  v := v';
  let idx = ref 2 in
  while !k < 4 && !idx < 8 do
    let emitted, nu, nv = quick_three_accum !u !v m.(!idx) in
    incr idx;
    u := nu;
    v := nv;
    match emitted with
    | Some x ->
        out.(!k) <- x;
        incr k
    | None -> ()
  done;
  (* Flush the carry registers and anything left in the merge. *)
  let rest = ref 0.0 in
  for i = !idx to 7 do
    rest := !rest +. m.(i)
  done;
  if !k < 4 then begin
    out.(!k) <- !u;
    incr k;
    if !k < 4 then begin
      out.(!k) <- !v;
      incr k
    end
    else out.(3) <- out.(3) +. !v
  end
  else rest := !rest +. !u +. !v;
  renorm out.(0) out.(1) out.(2) out.(3) !rest

let neg a = { a0 = -.a.a0; a1 = -.a.a1; a2 = -.a.a2; a3 = -.a.a3 }
let sub a b = add a (neg b)

(* QD's accurate multiplication: the same truncated product expansion
   as Section 4.2 (6 TwoProds + 4 products), accumulated order by
   order, then branch-renormalized. *)
let mul a b =
  let p00, q00 = Eft.two_prod a.a0 b.a0 in
  let p01, q01 = Eft.two_prod a.a0 b.a1 in
  let p10, q10 = Eft.two_prod a.a1 b.a0 in
  let p02, q02 = Eft.two_prod a.a0 b.a2 in
  let p11, q11 = Eft.two_prod a.a1 b.a1 in
  let p20, q20 = Eft.two_prod a.a2 b.a0 in
  let p03 = a.a0 *. b.a3 and p12 = a.a1 *. b.a2 in
  let p21 = a.a2 *. b.a1 and p30 = a.a3 *. b.a0 in
  (* order 1: p01 + p10 + q00 via a three-sum *)
  let s1, t1 = Eft.two_sum p01 p10 in
  let s1, t1' = Eft.two_sum s1 q00 in
  let o1_err = t1 +. t1' in
  (* order 2: p02 + p11 + p20 + q01 + q10 + o1_err *)
  let s2, u1 = Eft.two_sum p02 p20 in
  let s2, u2 = Eft.two_sum s2 p11 in
  let s2, u3 = Eft.two_sum s2 q01 in
  let s2, u4 = Eft.two_sum s2 q10 in
  let s2, u5 = Eft.two_sum s2 o1_err in
  (* order 3: everything else, plain sums *)
  let o3 =
    p03 +. p12 +. p21 +. p30 +. q02 +. q11 +. q20 +. u1 +. u2 +. u3 +. u4 +. u5
  in
  renorm p00 s1 s2 o3 0.0

let mul_float a f =
  let p0, q0 = Eft.two_prod a.a0 f in
  let p1, q1 = Eft.two_prod a.a1 f in
  let p2, q2 = Eft.two_prod a.a2 f in
  let p3 = a.a3 *. f in
  let s1, t1 = Eft.two_sum p1 q0 in
  let s2, t2 = Eft.two_sum p2 q1 in
  let s2, t3 = Eft.two_sum s2 t1 in
  let o3 = p3 +. q2 +. t2 +. t3 in
  renorm p0 s1 s2 o3 0.0

let div a b =
  if b.a0 = 0.0 then of_float (a.a0 /. b.a0)
  else begin
    (* Four quotient corrections, as in QD. *)
    let q0 = a.a0 /. b.a0 in
    let r = sub a (mul_float b q0) in
    let q1 = r.a0 /. b.a0 in
    let r = sub r (mul_float b q1) in
    let q2 = r.a0 /. b.a0 in
    let r = sub r (mul_float b q2) in
    let q3 = r.a0 /. b.a0 in
    let r = sub r (mul_float b q3) in
    let q4 = r.a0 /. b.a0 in
    renorm q0 q1 q2 (q3 +. q4) 0.0
  end

let sqrt a =
  if a.a0 = 0.0 then zero
  else if a.a0 < 0.0 then of_float Float.nan
  else begin
    (* Newton iteration on 1/sqrt in increasing precision. *)
    let x = of_float (1.0 /. Float.sqrt a.a0) in
    let half = of_float 0.5 in
    let step x =
      let ax2 = mul a (mul x x) in
      add x (mul (mul x half) (sub one ax2))
    in
    let x = step (step (step x)) in
    let s = mul a x in
    add s (mul (mul x half) (sub a (mul s s)))
  end

let compare a b =
  let d = sub a b in
  Float.compare d.a0 0.0
