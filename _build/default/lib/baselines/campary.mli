(** Certified floating-point expansion arithmetic in the style of
    CAMPARY (Joldes, Muller, Popescu & Tucker, ICMS 2016).

    CAMPARY ships two algorithm sets; the paper benchmarks the
    "certified" one (provably correct but branching), and so does this
    reimplementation: addition merges the operands by decreasing
    magnitude (data-dependent compares), runs a VecSum pass, and
    renormalizes with VecSumErrBranch — a loop whose trip pattern
    depends on where zeros appear.  Values are expansions of any fixed
    length [n >= 1], leading term first. *)

type t = float array

val of_float : n:int -> float -> t
val zero : n:int -> t
val to_float : t -> float
val terms : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val compare : t -> t -> int

val renormalize : float array -> int -> float array
(** [renormalize xs n]: VecSum followed by VecSumErrBranch, producing
    an [n]-term nonoverlapping expansion from arbitrary (magnitude-
    ordered-ish) input. *)
