lib/baselines/fpu_emul.mli:
