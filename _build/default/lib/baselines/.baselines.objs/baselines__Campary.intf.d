lib/baselines/campary.mli:
