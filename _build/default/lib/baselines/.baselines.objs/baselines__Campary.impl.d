lib/baselines/campary.ml: Array Eft Float
