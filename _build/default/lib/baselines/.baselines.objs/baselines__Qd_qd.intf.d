lib/baselines/qd_qd.mli:
