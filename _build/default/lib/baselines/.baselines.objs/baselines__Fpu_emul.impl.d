lib/baselines/fpu_emul.ml: Bigfloat
