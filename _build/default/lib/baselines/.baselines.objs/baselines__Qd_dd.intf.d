lib/baselines/qd_dd.mli:
