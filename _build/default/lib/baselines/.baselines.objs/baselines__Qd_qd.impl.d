lib/baselines/qd_qd.ml: Array Eft Float List
