lib/baselines/arb.ml: Bigfloat Float Printf
