lib/baselines/arb.mli: Bigfloat
