lib/baselines/qd_dd.ml: Eft Float
