(** The number interface the extended-precision BLAS kernels need.

    Every arithmetic under benchmark — native doubles, the MultiFloat
    FPAN kernels, QD, CAMPARY, the software FPU ({!Bigfloat}) at a
    fixed precision, and the emulated-binary32 GPU types — implements
    this signature, so all of them run the {e same} kernel code and the
    comparison isolates the cost of the arithmetic itself, as in the
    paper's benchmark methodology (Section 5). *)

module type S = sig
  type t

  val name : string
  (** Display name for benchmark tables. *)

  val bits : int
  (** Nominal precision in bits (53, 103, 156, or 208). *)

  val zero : t
  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val mul : t -> t -> t
end
