module Make (N : Numeric.S) = struct
  let axpy ~alpha ~x ~y =
    let n = Array.length x in
    assert (Array.length y = n);
    for i = 0 to n - 1 do
      y.(i) <- N.add (N.mul alpha x.(i)) y.(i)
    done

  let dot ~x ~y =
    let n = Array.length x in
    assert (Array.length y = n);
    let acc = ref N.zero in
    for i = 0 to n - 1 do
      acc := N.add !acc (N.mul x.(i) y.(i))
    done;
    !acc

  let gemv ~m ~n ~a ~x ~y =
    assert (Array.length a = m * n && Array.length x = n && Array.length y = m);
    for i = 0 to m - 1 do
      let acc = ref N.zero in
      let row = i * n in
      for j = 0 to n - 1 do
        acc := N.add !acc (N.mul a.(row + j) x.(j))
      done;
      y.(i) <- !acc
    done

  let gemm ~m ~n ~k ~a ~b ~c =
    assert (Array.length a = m * k && Array.length b = k * n && Array.length c = m * n);
    for i = 0 to m - 1 do
      let crow = i * n in
      for p = 0 to k - 1 do
        let aip = a.((i * k) + p) in
        let brow = p * n in
        for j = 0 to n - 1 do
          c.(crow + j) <- N.add c.(crow + j) (N.mul aip b.(brow + j))
        done
      done
    done

  let axpy_pool pool ~alpha ~x ~y =
    let n = Array.length x in
    assert (Array.length y = n);
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> y.(i) <- N.add (N.mul alpha x.(i)) y.(i))

  let dot_pool pool ~x ~y =
    let n = Array.length x in
    assert (Array.length y = n);
    Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n ~init:N.zero
      ~map:(fun i -> N.mul x.(i) y.(i))
      ~combine:N.add

  let gemv_pool pool ~m ~n ~a ~x ~y =
    assert (Array.length a = m * n && Array.length x = n && Array.length y = m);
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:m (fun i ->
        let acc = ref N.zero in
        let row = i * n in
        for j = 0 to n - 1 do
          acc := N.add !acc (N.mul a.(row + j) x.(j))
        done;
        y.(i) <- !acc)

  let gemm_pool pool ~m ~n ~k ~a ~b ~c =
    assert (Array.length a = m * k && Array.length b = k * n && Array.length c = m * n);
    Parallel.Pool.parallel_for pool ~lo:0 ~hi:m (fun i ->
        let crow = i * n in
        for p = 0 to k - 1 do
          let aip = a.((i * k) + p) in
          let brow = p * n in
          for j = 0 to n - 1 do
            c.(crow + j) <- N.add c.(crow + j) (N.mul aip b.(brow + j))
          done
        done)

  let vec_of_floats fs = Array.map N.of_float fs
  let vec_to_floats vs = Array.map N.to_float vs
end
