(** {!Numeric.S} instances for every arithmetic under benchmark: the
    library zoo of the paper's evaluation, all driving the same kernel
    code in {!Kernels}.

    The MultiFloat types (and native double) additionally satisfy
    {!Numeric.BATCHED}: they advertise a planar
    (structure-of-arrays) fast path backed by the hand-inlined batch
    kernels in {!Multifloat.Batch}.  Every baseline stays a plain
    {!Numeric.S} and runs the scalar kernels — same kernel code, same
    op-count convention, so the comparison still isolates the cost of
    the arithmetic itself. *)

module Double : Numeric.BATCHED with type t = float

module Mf2 : Numeric.BATCHED with type t = Multifloat.Mf2.t
module Mf3 : Numeric.BATCHED with type t = Multifloat.Mf3.t
module Mf4 : Numeric.BATCHED with type t = Multifloat.Mf4.t

module Qd_dd : Numeric.S with type t = Baselines.Qd_dd.t
module Qd_qd : Numeric.S with type t = Baselines.Qd_qd.t

module Campary2 : Numeric.S with type t = Baselines.Campary.t
module Campary3 : Numeric.S with type t = Baselines.Campary.t
module Campary4 : Numeric.S with type t = Baselines.Campary.t

(* The software-FPU baseline stands in for the whole MPFR / GMP /
   FLINT / Boost class (one implementation, labeled as the class). *)
module Fpu53 : Numeric.S with type t = Baselines.Fpu_emul.P53.t
module Fpu103 : Numeric.S with type t = Baselines.Fpu_emul.P103.t
module Fpu156 : Numeric.S with type t = Baselines.Fpu_emul.P156.t
module Fpu208 : Numeric.S with type t = Baselines.Fpu_emul.P208.t

(* Ball arithmetic (Arb): the FLINT-class baseline. *)
module Arb53 : Numeric.S with type t = Baselines.Arb.t
module Arb103 : Numeric.S with type t = Baselines.Arb.t
module Arb156 : Numeric.S with type t = Baselines.Arb.t
module Arb208 : Numeric.S with type t = Baselines.Arb.t

(* The emulated-binary32 GPU types (Figure 11): batched through the
   generic planar fallback (element-at-a-time arithmetic, planar
   layout) rather than hand-inlined plane kernels. *)
module Gpu1 : Numeric.BATCHED with type t = Gpu32.Gpu.Mf1.t
module Gpu2 : Numeric.BATCHED with type t = Gpu32.Gpu.Mf2.t
module Gpu3 : Numeric.BATCHED with type t = Gpu32.Gpu.Mf3.t
module Gpu4 : Numeric.BATCHED with type t = Gpu32.Gpu.Mf4.t
