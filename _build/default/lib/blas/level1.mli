(** The remaining BLAS level-1/level-2 routines over MultiFloat
    arithmetic.

    {!Kernels} keeps to the four kernels the paper benchmarks (over the
    minimal {!Numeric.S} so every baseline library can run them); this
    module completes the level-1 surface a user of an extended-precision
    BLAS expects — scal/copy/swap/asum/nrm2/iamax/rot/axpby and the
    rank-1 update — over the full MultiFloat interface. *)

module Make (M : Multifloat.Ops.S) : sig
  val scal : alpha:M.t -> M.t array -> unit
  val copy : src:M.t array -> dst:M.t array -> unit
  val swap : M.t array -> M.t array -> unit

  val asum : M.t array -> M.t
  (** Sum of absolute values. *)

  val nrm2 : M.t array -> M.t
  (** Euclidean norm, with scaling against intermediate overflow. *)

  val iamax : M.t array -> int
  (** Index of the first element of maximal absolute value. *)

  val rot : c:M.t -> s:M.t -> M.t array -> M.t array -> unit
  (** Apply a Givens rotation to the vector pair. *)

  val givens : a:M.t -> b:M.t -> M.t * M.t * M.t
  (** [(c, s, r)] with [c a + s b = r] and [-s a + c b = 0]. *)

  val axpby : alpha:M.t -> x:M.t array -> beta:M.t -> y:M.t array -> unit
  (** [y <- alpha x + beta y]. *)

  val ger : m:int -> n:int -> alpha:M.t -> x:M.t array -> y:M.t array -> a:M.t array -> unit
  (** Rank-1 update [A <- A + alpha x y^T], row-major [m*n]. *)
end
