module Make (M : Multifloat.Ops.S) = struct
  let scal ~alpha x =
    for i = 0 to Array.length x - 1 do
      x.(i) <- M.mul alpha x.(i)
    done

  let copy ~src ~dst =
    assert (Array.length src = Array.length dst);
    Array.blit src 0 dst 0 (Array.length src)

  let swap x y =
    assert (Array.length x = Array.length y);
    for i = 0 to Array.length x - 1 do
      let t = x.(i) in
      x.(i) <- y.(i);
      y.(i) <- t
    done

  let asum x = Array.fold_left (fun acc v -> M.add acc (M.abs v)) M.zero x

  let nrm2 x =
    (* Scale by the largest exponent so squares cannot overflow. *)
    let mx = Array.fold_left (fun acc v -> Float.max acc (Float.abs (M.to_float v))) 0.0 x in
    if mx = 0.0 then M.zero
    else begin
      let e = Eft.exponent mx in
      let acc = ref M.zero in
      Array.iter
        (fun v ->
          let s = M.scale_pow2 v (-e) in
          acc := M.add !acc (M.mul s s))
        x;
      M.scale_pow2 (M.sqrt !acc) e
    end

  let iamax x =
    let best = ref 0 in
    for i = 1 to Array.length x - 1 do
      if M.compare (M.abs x.(i)) (M.abs x.(!best)) > 0 then best := i
    done;
    !best

  let rot ~c ~s x y =
    assert (Array.length x = Array.length y);
    for i = 0 to Array.length x - 1 do
      let xi = x.(i) and yi = y.(i) in
      x.(i) <- M.add (M.mul c xi) (M.mul s yi);
      y.(i) <- M.sub (M.mul c yi) (M.mul s xi)
    done

  let givens ~a ~b =
    if M.is_zero b then (M.one, M.zero, a)
    else begin
      let r = M.sqrt (M.add (M.mul a a) (M.mul b b)) in
      let r = if M.sign a < 0 then M.neg r else r in
      (M.div a r, M.div b r, r)
    end

  let axpby ~alpha ~x ~beta ~y =
    assert (Array.length x = Array.length y);
    for i = 0 to Array.length x - 1 do
      y.(i) <- M.add (M.mul alpha x.(i)) (M.mul beta y.(i))
    done

  let ger ~m ~n ~alpha ~x ~y ~a =
    assert (Array.length x = m && Array.length y = n && Array.length a = m * n);
    for i = 0 to m - 1 do
      let ax = M.mul alpha x.(i) in
      for j = 0 to n - 1 do
        a.((i * n) + j) <- M.add a.((i * n) + j) (M.mul ax y.(j))
      done
    done
end
