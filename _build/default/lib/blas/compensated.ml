let kahan_sum xs =
  let s = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    xs;
  !s

let neumaier_sum xs =
  let s = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let t = !s +. x in
      if Float.abs !s >= Float.abs x then c := !c +. (!s -. t +. x) else c := !c +. (x -. t +. !s);
      s := t)
    xs;
  !s +. !c

let sum2 xs =
  let s = ref 0.0 and e = ref 0.0 in
  Array.iter
    (fun x ->
      let t, err = Eft.two_sum !s x in
      s := t;
      e := !e +. err)
    xs;
  !s +. !e

let dot2 xs ys =
  let n = Array.length xs in
  assert (Array.length ys = n);
  let s = ref 0.0 and e = ref 0.0 in
  for i = 0 to n - 1 do
    let p, ep = Eft.two_prod xs.(i) ys.(i) in
    let t, es = Eft.two_sum !s p in
    s := t;
    e := !e +. ep +. es
  done;
  !s +. !e
