(* Ozaki splitting scheme (error-free slice products).

   Implementation notes: slices are extracted against a grid common to
   the whole vector (sigma trick), so that the partial dot product of
   slice i of x with slice j of y is a sum of doubles on one exponent
   grid and is computed exactly in binary64 provided
   2*width + ceil(log2 n) <= 53.  The slice count is data-dependent in
   the genuine scheme; here the caller picks it (default 4 ~ 2-fold
   precision), which is the fixed-budget variant. *)

let ceil_log2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
  if n <= 1 then 0 else go 0 1

(* Two guard bits per operand: a slice extracted on the sigma grid can
   carry width+1 significant bits, and the pairwise-product sum needs
   log2 n headroom on top of the 2(width+1) product bits. *)
let slice_width ~n = ((53 - ceil_log2 (max 1 n)) / 2) - 2

let split ~slices ~width x =
  assert (slices >= 1 && width >= 1);
  let out = Array.make slices 0.0 in
  let r = ref x in
  for i = 0 to slices - 2 do
    if !r <> 0.0 then begin
      let e = Eft.exponent !r in
      let scale = Float.ldexp 1.0 (e + 1 - width) in
      let hi = Float.round (!r /. scale) *. scale in
      out.(i) <- hi;
      r := !r -. hi
    end
  done;
  out.(slices - 1) <- !r;
  out

(* Split a whole vector against a common grid per slice level. *)
let split_vector ~slices ~width v =
  let n = Array.length v in
  let out = Array.init slices (fun _ -> Array.make n 0.0) in
  let r = Array.copy v in
  for s = 0 to slices - 2 do
    let emax = Array.fold_left (fun acc x -> if x = 0.0 then acc else max acc (Eft.exponent x)) min_int r in
    if emax > min_int then begin
      (* sigma = 2^(emax + 53 - width): (r + sigma) - sigma keeps the
         top bits of r on sigma's grid, exactly. *)
      let sigma = Float.ldexp 1.0 (emax + 53 - width) in
      for p = 0 to n - 1 do
        let hi = r.(p) +. sigma -. sigma in
        out.(s).(p) <- hi;
        r.(p) <- r.(p) -. hi
      done
    end
  done;
  Array.blit r 0 out.(slices - 1) 0 n;
  out

let dot ?(slices = 4) x y =
  let n = Array.length x in
  assert (Array.length y = n);
  if n = 0 then 0.0
  else begin
    let width = slice_width ~n in
    let xs = split_vector ~slices ~width x in
    let ys = split_vector ~slices ~width y in
    (* Each slice-pair partial sum is exact in double; accumulate the
       k^2 partials exactly and round once. *)
    let partials = ref [] in
    for i = 0 to slices - 1 do
      for j = 0 to slices - 1 do
        let acc = ref 0.0 in
        let xi = xs.(i) and yj = ys.(j) in
        for p = 0 to n - 1 do
          acc := !acc +. (xi.(p) *. yj.(p))
        done;
        if !acc <> 0.0 then partials := !acc :: !partials
      done
    done;
    Exact.approx (Exact.compress (Exact.sum_floats (Array.of_list !partials)))
  end

let gemm ?(slices = 4) ~m ~n ~k ~a ~b ~c () =
  assert (Array.length a = m * k && Array.length b = k * n && Array.length c = m * n);
  (* Split all rows of A and all columns of B once. *)
  let width = slice_width ~n:k in
  let rows = Array.init m (fun i -> split_vector ~slices ~width (Array.sub a (i * k) k)) in
  let cols =
    Array.init n (fun j -> split_vector ~slices ~width (Array.init k (fun p -> b.((p * n) + j))))
  in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let partials = ref [ c.((i * n) + j) ] in
      for si = 0 to slices - 1 do
        for sj = 0 to slices - 1 do
          let acc = ref 0.0 in
          let xi = rows.(i).(si) and yj = cols.(j).(sj) in
          for p = 0 to k - 1 do
            acc := !acc +. (xi.(p) *. yj.(p))
          done;
          if !acc <> 0.0 then partials := !acc :: !partials
        done
      done;
      c.((i * n) + j) <- Exact.approx (Exact.compress (Exact.sum_floats (Array.of_list !partials)))
    done
  done
