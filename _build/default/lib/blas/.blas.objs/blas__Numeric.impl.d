lib/blas/numeric.ml:
