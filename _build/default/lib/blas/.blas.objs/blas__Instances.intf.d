lib/blas/instances.mli: Baselines Gpu32 Multifloat Numeric
