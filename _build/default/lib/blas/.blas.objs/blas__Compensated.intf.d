lib/blas/compensated.mli:
