lib/blas/ozaki.ml: Array Eft Exact Float
