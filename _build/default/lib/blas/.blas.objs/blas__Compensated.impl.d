lib/blas/compensated.ml: Array Eft Float
