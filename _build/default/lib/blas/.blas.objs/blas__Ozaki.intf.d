lib/blas/ozaki.mli:
