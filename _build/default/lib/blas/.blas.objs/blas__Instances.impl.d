lib/blas/instances.ml: Baselines Bigfloat Gpu32 Multifloat Numeric Printf
