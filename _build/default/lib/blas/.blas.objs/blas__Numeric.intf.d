lib/blas/numeric.mli:
