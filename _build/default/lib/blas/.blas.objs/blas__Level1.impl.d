lib/blas/level1.ml: Array Eft Float Multifloat
