lib/blas/kernels.mli: Numeric Parallel
