lib/blas/kernels.ml: Array Numeric Parallel
