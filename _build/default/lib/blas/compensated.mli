(** Compensated summation and dot products.

    Section 6 of the paper contrasts FPANs with {e compensated
    algorithms} (Kahan-Babuska-Neumaier summation and the Ogita-Rump-
    Oishi Sum2/Dot2 family): these also build on error-free
    transformations but operate on a variable number of inputs and only
    partially track rounding errors, giving weaker worst-case
    guarantees than a fixed-precision expansion type.  They are
    implemented here both as useful library functions and as the
    comparison point for the accuracy experiments: Dot2 behaves like a
    double-double accumulator (as-if-computed-in-2-fold precision),
    which our Mf2 dot matches with a composable type instead of a
    special-cased loop. *)

val kahan_sum : float array -> float
(** Kahan's compensated summation (one error term, can lose the
    compensation when the running sum shrinks). *)

val neumaier_sum : float array -> float
(** Kahan-Babuska-Neumaier summation: branch on magnitudes, error
    accumulated separately; error bound independent of condition. *)

val sum2 : float array -> float
(** Ogita-Rump-Oishi Sum2: as if computed in twice the working
    precision, then rounded. *)

val dot2 : float array -> float array -> float
(** Ogita-Rump-Oishi Dot2: dot product as if computed in twice the
    working precision (TwoProd + cascaded TwoSum). *)
