(** The Ozaki splitting scheme for high-precision matrix products.

    Section 4.4 of the paper discusses the Ozaki scheme (Ootomo, Ozaki
    & Yokota 2024) as the only known approach that widens the exponent
    range as well as the precision — at the cost of data-dependent
    branching and a dynamic number of slices, which is exactly the
    trade-off the paper's fixed-length branch-free expansions refuse.
    This module implements the scheme so that the comparison is
    runnable rather than rhetorical.

    The idea: split each input value into [k] {e exact} slices whose
    magnitudes are separated by [s] bits, where [s] is chosen from the
    dot-product length so that every pairwise slice product and every
    in-slice accumulation is {e exact} in double precision.  Then
    [x . y] is computed as [k^2] (or the significant half of that many)
    error-free partial dot products, accumulated from smallest to
    largest.  The slice count depends on the data (a wider exponent
    spread needs more slices) — the data-dependent part the paper calls
    out. *)

val slice_width : n:int -> int
(** Bits per slice so that an [n]-term accumulation of slice products
    stays exact in binary64. *)

val split : slices:int -> width:int -> float -> float array
(** Exact splitting: the returned slices sum to the input exactly, and
    slice [i] has at most [width] significant bits aligned [i * width]
    bits below the leading slice. *)

val dot : ?slices:int -> float array -> float array -> float
(** Ozaki dot product; [slices] defaults to enough for ~2-fold
    precision (4).  The result is the double nearest the exactly
    accumulated slice products (up to the final summation order). *)

val gemm :
  ?slices:int ->
  m:int ->
  n:int ->
  k:int ->
  a:float array ->
  b:float array ->
  c:float array ->
  unit ->
  unit
(** [C <- C + A B] with each inner product computed by {!dot}'s
    slice-product scheme. *)
