(** Emulated IEEE binary16 (half precision), exponent range included.

    Section 4.4 of the paper: "Their narrow exponent range causes
    floating-point expansions to lose precision past the machine
    underflow threshold, which typically occurs at roughly 4 terms in
    single precision and just 2 terms in half precision."  {!F32}
    emulates only the binary32 {e precision} (its exponent range is
    never exercised); this module emulates binary16 in full — 11
    mantissa bits, exponents clamped to [-14, 15], gradual underflow to
    2^-24, overflow to infinity — precisely so that the quoted claim
    can be demonstrated: see the [exponent-range] experiment and the
    test suite. *)

include Multifloat.Base.BASE

val round : float -> t
(** Round a double to the binary16 grid, including exponent clamping,
    gradual underflow, and overflow to infinity. *)

val max_value : float
(** 65504, the largest finite binary16 value. *)

val min_subnormal : float
(** 2^-24, the smallest positive binary16 value. *)
