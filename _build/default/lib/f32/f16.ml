type t = float

let name = "binary16 (emulated)"
let precision = 11
let max_value = 65504.0
let min_subnormal = Float.ldexp 1.0 (-24)

(* Round a double to binary16: round the mantissa to 11 bits at the
   normal grid, or to the fixed 2^-24 grid in the subnormal range, then
   clamp the exponent. *)
let round x =
  if Float.is_nan x then Float.nan
  else if x = 0.0 then 0.0
  else begin
    let mag = Float.abs x in
    let s = if x < 0.0 then -1.0 else 1.0 in
    if mag >= 65520.0 (* halfway to the first non-representable step *) then s *. Float.infinity
    else begin
      let e = Eft.exponent mag in
      let grid_exp = if e < -14 then -24 (* subnormal grid *) else e - 10 in
      let grid = Float.ldexp 1.0 grid_exp in
      (* mag / grid is small (<= 2^11 normal, < 2^10 subnormal) and the
         division by a power of two is exact, so one round-to-nearest-
         even to an integer implements the binary16 rounding.  The
         2^52 trick performs RNE under the default rounding mode. *)
      let q = mag /. grid in
      let r = q +. 0x1p52 -. 0x1p52 in
      let v = s *. (r *. grid) in
      if Float.abs v > max_value then s *. Float.infinity else v
    end
  end

let zero = 0.0
let one = 1.0
let of_float = round
let to_float x = x
let add x y = round (x +. y)
let sub x y = round (x -. y)
let mul x y = round (x *. y)
let div x y = round (x /. y)
let sqrt x = round (Float.sqrt x)
let neg x = -.x

let fma x y z =
  let p = x *. y in
  let s, e = Eft.two_sum p z in
  let s = if e > 0.0 then Float.succ s else if e < 0.0 then Float.pred s else s in
  round s

let ldexp x k = round (Float.ldexp x k)
