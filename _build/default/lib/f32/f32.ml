type t = float

let name = "binary32 (emulated)"
let precision = 24

(* Round a double to binary32 via the 32-bit encoding: OCaml's
   Int32.bits_of_float performs the C (float) conversion, which rounds
   to nearest even. *)
let round x = Int32.float_of_bits (Int32.bits_of_float x)

let zero = 0.0
let one = 1.0
let of_float = round
let to_float x = x
let add x y = round (x +. y)
let sub x y = round (x -. y)
let mul x y = round (x *. y)
let div x y = round (x /. y)
let sqrt x = round (Float.sqrt x)
let neg x = -.x

(* Correctly-rounded binary32 fma: the product x*y is exact in double;
   adding z rounds once to binary64.  If that sum was inexact, nudge it
   one binary64 ulp toward the lost error (round-to-odd), which cannot
   cross a binary32 boundary but breaks exact ties correctly; then
   round to binary32. *)
let fma x y z =
  let p = x *. y in
  let s, e = Eft.two_sum p z in
  let s = if e > 0.0 then Float.succ s else if e < 0.0 then Float.pred s else s in
  round s

let ldexp x k = round (Float.ldexp x k)
let ulp32 x = if x = 0.0 then 0.0 else Float.ldexp 1.0 (Eft.exponent x - 23)
