(** [MultiFloat<float, N>] over the emulated binary32 base — the
    datatypes of the paper's GPU experiment (Figure 11): extended
    precision built on single-precision hardware. *)

module Mf1 = Multifloat.Generic.Make
    (F32)
    (struct
      let terms = 1
    end)

module Mf2 = Multifloat.Generic.Make
    (F32)
    (struct
      let terms = 2
    end)

module Mf3 = Multifloat.Generic.Make
    (F32)
    (struct
      let terms = 3
    end)

module Mf4 = Multifloat.Generic.Make
    (F32)
    (struct
      let terms = 4
    end)
