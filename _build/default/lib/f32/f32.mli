(** Emulated IEEE binary32 arithmetic — the base type for the GPU
    substitution experiment (Figure 11 of the paper).

    The paper's GPU benchmarks use [T = float] because RDNA3 lacks
    double-precision units; this container has no GPU, so we reproduce
    the same code path — FPAN arithmetic over a single-precision base —
    by emulating binary32 on doubles.  A value of type {!t} is an OCaml
    float whose value is always exactly representable in binary32; each
    operation computes in double and rounds through the 32-bit
    encoding, which is correctly rounded because binary32 inputs are
    exact in binary64 and the final conversion rounds to nearest even.

    The fused multiply-add needs care: the double product is exact (24
    + 24 < 53 mantissa bits), but adding the addend in double and then
    rounding to binary32 would round twice.  {!fma} avoids this with a
    round-to-odd step (Boldo-Melquiond), nudging the double sum off any
    binary32 tie by one binary64 ulp in the direction of the discarded
    error.

    [Gpu] (a sibling module in this library) instantiates the generic
    MultiFloat functor over this base, giving the [MultiFloat<float, N>]
    datatypes of the paper's GPU experiment. *)

include Multifloat.Base.BASE

val round : float -> t
(** Round an arbitrary double to the binary32 grid. *)

val ulp32 : t -> float
(** Unit in the last place at binary32 precision. *)
