lib/f32/f32.mli: Multifloat
