lib/f32/f32.ml: Eft Float Int32
