lib/f32/gpu.mli:
