lib/f32/gpu.ml: F32 Multifloat
