lib/f32/f16.ml: Eft Float
