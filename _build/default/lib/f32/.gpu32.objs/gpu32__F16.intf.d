lib/f32/f16.mli: Multifloat
