module Make (M : Multifloat.Ops.S) = struct
  type system = t:M.t -> y:M.t array -> dy:M.t array -> unit

  let axpy alpha x y = Array.mapi (fun i yi -> M.add (M.mul alpha x.(i)) yi) y

  let rk4_step ~f ~t ~h ~y =
    let n = Array.length y in
    let k1 = Array.make n M.zero in
    let k2 = Array.make n M.zero in
    let k3 = Array.make n M.zero in
    let k4 = Array.make n M.zero in
    let half = M.scale_pow2 h (-1) in
    f ~t ~y ~dy:k1;
    f ~t:(M.add t half) ~y:(axpy half k1 y) ~dy:k2;
    f ~t:(M.add t half) ~y:(axpy half k2 y) ~dy:k3;
    f ~t:(M.add t h) ~y:(axpy h k3 y) ~dy:k4;
    let sixth = M.div h (M.of_int 6) in
    let third = M.div h (M.of_int 3) in
    axpy sixth k1 (axpy third k2 (axpy third k3 (axpy sixth k4 y)))

  let rk4 ~f ~t0 ~h ~steps ~y0 =
    let y = ref y0 in
    let t = ref t0 in
    for _ = 1 to steps do
      y := rk4_step ~f ~t:!t ~h ~y:!y;
      t := M.add !t h
    done;
    !y

  let leapfrog_step ~accel ~h ~q ~p =
    let n = Array.length q in
    let a = Array.make n M.zero in
    let half = M.scale_pow2 h (-1) in
    accel ~q ~a;
    for i = 0 to n - 1 do
      p.(i) <- M.add p.(i) (M.mul half a.(i))
    done;
    for i = 0 to n - 1 do
      q.(i) <- M.add q.(i) (M.mul h p.(i))
    done;
    accel ~q ~a;
    for i = 0 to n - 1 do
      p.(i) <- M.add p.(i) (M.mul half a.(i))
    done

  type stats = {
    steps_accepted : int;
    steps_rejected : int;
    final_h : float;
  }

  (* Fehlberg 4(5) coefficients, exact rationals evaluated at working
     precision once per functor instantiation. *)
  let r_ num den = M.div (M.of_int num) (M.of_int den)
  let c21 = r_ 1 4
  let c31 = r_ 3 32
  let c32 = r_ 9 32
  let c41 = r_ 1932 2197
  let c42 = r_ (-7200) 2197
  let c43 = r_ 7296 2197
  let c51 = r_ 439 216
  let c52 = M.of_int (-8)
  let c53 = r_ 3680 513
  let c54 = r_ (-845) 4104
  let c61 = r_ (-8) 27
  let c62 = M.of_int 2
  let c63 = r_ (-3544) 2565
  let c64 = r_ 1859 4104
  let c65 = r_ (-11) 40
  (* 4th-order solution weights *)
  let b1 = r_ 25 216
  let b3 = r_ 1408 2565
  let b4 = r_ 2197 4104
  let b5 = r_ (-1) 5
  (* 5th-order weights *)
  let d1 = r_ 16 135
  let d3 = r_ 6656 12825
  let d4 = r_ 28561 56430
  let d5 = r_ (-9) 50
  let d6 = r_ 2 55

  let rkf45 ~f ~t0 ~t1 ~h0 ~tol ~y0 =
    let n = Array.length y0 in
    let eval t y =
      let dy = Array.make n M.zero in
      f ~t ~y ~dy;
      dy
    in
    let y = ref (Array.copy y0) in
    let t = ref t0 in
    let h = ref h0 in
    let accepted = ref 0 in
    let rejected = ref 0 in
    let lincomb base terms =
      Array.mapi
        (fun i yi ->
          List.fold_left (fun acc (c, (k : M.t array)) -> M.add acc (M.mul (M.mul !h c) k.(i))) yi terms)
        base
    in
    let continue = ref true in
    while !continue && M.compare !t t1 < 0 do
      (* Clamp the step to land exactly on t1. *)
      let remaining = M.sub t1 !t in
      if M.compare !h remaining > 0 then h := remaining;
      let k1 = eval !t !y in
      let k2 = eval (M.add !t (M.mul (r_ 1 4) !h)) (lincomb !y [ (c21, k1) ]) in
      let k3 = eval (M.add !t (M.mul (r_ 3 8) !h)) (lincomb !y [ (c31, k1); (c32, k2) ]) in
      let k4 =
        eval (M.add !t (M.mul (r_ 12 13) !h)) (lincomb !y [ (c41, k1); (c42, k2); (c43, k3) ])
      in
      let k5 =
        eval (M.add !t !h) (lincomb !y [ (c51, k1); (c52, k2); (c53, k3); (c54, k4) ])
      in
      let k6 =
        eval
          (M.add !t (M.mul (r_ 1 2) !h))
          (lincomb !y [ (c61, k1); (c62, k2); (c63, k3); (c64, k4); (c65, k5) ])
      in
      let y4 = lincomb !y [ (b1, k1); (b3, k3); (b4, k4); (b5, k5) ] in
      let y5 = lincomb !y [ (d1, k1); (d3, k3); (d4, k4); (d5, k5); (d6, k6) ] in
      (* Local error estimate and step control. *)
      let err = ref 0.0 in
      for i = 0 to n - 1 do
        err := Float.max !err (Float.abs (M.to_float (M.sub y5.(i) y4.(i))))
      done;
      let hf = Float.abs (M.to_float !h) in
      let target = tol *. hf in
      if !err <= target || hf < 1e-300 then begin
        incr accepted;
        t := M.add !t !h;
        y := y5
      end
      else incr rejected;
      (* Standard step-size update with safety factor. *)
      let factor =
        if !err = 0.0 then 4.0
        else Float.min 4.0 (Float.max 0.1 (0.9 *. ((target /. !err) ** 0.2)))
      in
      h := M.mul_float !h factor;
      if M.compare !t t1 >= 0 then continue := false
    done;
    (!y, { steps_accepted = !accepted; steps_rejected = !rejected; final_h = M.to_float !h })
end
