(** Extended-precision ODE integration.

    One of the paper's motivating domains is nonlinear dynamical
    systems, where rounding errors grow exponentially and double
    precision limits both the reproducibility horizon and the
    attainable tolerance of adaptive integrators.  This package
    provides the classic fixed-step methods (RK4, leapfrog for
    separable Hamiltonians) and an adaptive Runge-Kutta-Fehlberg 4(5)
    integrator over any MultiFloat precision.

    State vectors are [M.t array]; the derivative function receives
    [(t, y)] and writes into a caller-provided output array (no
    allocation in the hot path beyond what the arithmetic itself
    does). *)

module Make (M : Multifloat.Ops.S) : sig
  type system = t:M.t -> y:M.t array -> dy:M.t array -> unit

  val rk4_step : f:system -> t:M.t -> h:M.t -> y:M.t array -> M.t array
  (** One classical Runge-Kutta step. *)

  val rk4 : f:system -> t0:M.t -> h:M.t -> steps:int -> y0:M.t array -> M.t array
  (** Integrate [steps] fixed steps; returns the final state. *)

  val leapfrog_step :
    accel:(q:M.t array -> a:M.t array -> unit) -> h:M.t -> q:M.t array -> p:M.t array -> unit
  (** One kick-drift-kick (velocity Verlet) step for a separable
      Hamiltonian [H = p^2/2 + V(q)]; symplectic, updates in place. *)

  type stats = {
    steps_accepted : int;
    steps_rejected : int;
    final_h : float;
  }

  val rkf45 :
    f:system ->
    t0:M.t ->
    t1:M.t ->
    h0:M.t ->
    tol:float ->
    y0:M.t array ->
    M.t array * stats
  (** Adaptive Fehlberg 4(5): integrates from [t0] to [t1], controlling
      the local error estimate below [tol] per unit step.  Extended
      precision lets [tol] go far below 1e-16, which double-precision
      integrators cannot honor. *)
end
