(* Computing pi to 60+ digits three different ways.

   A small showcase of the elementary-function layer: Machin's formula
   with the library's arctangent, a bare Taylor evaluation using only
   +,-,*,/ on 4-term expansions, and the builtin constant — all three
   must agree to the working precision (~215 bits, 64 digits).

   Run with: dune exec examples/pi_digits.exe *)

module M = Multifloat.Mf4
module F = Multifloat.Elementary.F4

(* atan(1/k) by its Taylor series, using nothing but field ops:
   atan(1/k) = sum_{i>=0} (-1)^i / ((2i+1) k^(2i+1)). *)
let atan_inv k =
  let k2 = M.of_int (k * k) in
  let term = ref (M.inv (M.of_int k)) in
  let sum = ref !term in
  let i = ref 1 in
  let continue = ref true in
  while !continue do
    term := M.div !term k2;
    let contrib = M.div !term (M.of_int ((2 * !i) + 1)) in
    sum := (if !i land 1 = 1 then M.sub !sum contrib else M.add !sum contrib);
    if Float.abs (M.to_float contrib) < Float.abs (M.to_float !sum) *. Float.ldexp 1.0 (-220) then
      continue := false;
    incr i
  done;
  !sum

let () =
  print_endline "=== pi to 64 digits, three ways ===\n";
  (* 1. Machin (1706): pi/4 = 4 atan(1/5) - atan(1/239), series only. *)
  let machin =
    M.mul_float (M.sub (M.mul_float (atan_inv 5) 4.0) (atan_inv 239)) 4.0
  in
  (* 2. The library arctangent (Newton on sin/cos): pi = 6 asin(1/2)...
     use pi = 16 atan(1/5) - 4 atan(1/239) with Elementary.atan. *)
  let via_atan =
    M.sub
      (M.mul_float (F.atan (M.inv (M.of_int 5))) 16.0)
      (M.mul_float (F.atan (M.inv (M.of_int 239))) 4.0)
  in
  (* 3. The builtin constant (from the software FPU substrate). *)
  let builtin = F.pi in
  Printf.printf "Machin series : %s\n" (M.to_string machin);
  Printf.printf "library atan  : %s\n" (M.to_string via_atan);
  Printf.printf "constant      : %s\n\n" (M.to_string builtin);
  let diff1 = Float.abs (M.to_float (M.sub machin builtin)) in
  let diff2 = Float.abs (M.to_float (M.sub via_atan builtin)) in
  Printf.printf "Machin  vs constant: %.3g\n" diff1;
  Printf.printf "atan    vs constant: %.3g\n" diff2;
  assert (diff1 < 1e-60 && diff2 < 1e-60);
  print_endline "\nAll three agree to ~64 decimal digits."
