(* Commutative multiplication and complex conjugate products.

   Section 4.2 of the paper: some earlier expansion-multiplication
   algorithms are not commutative, so the conjugate product
   (a+bi)(a-bi) = a^2 + b^2 + (ab - ba) i picks up a spurious nonzero
   imaginary part that damages eigensolvers.  Our multiplication FPANs
   have an explicit commutativity layer, making ab and ba bit-identical
   and the imaginary part exactly zero.

   Run with: dune exec examples/complex_conjugate.exe *)

module C3 = Multifloat.Mf_complex.C3
module M3 = Multifloat.Mf3

(* A deliberately non-commutative double-double-style multiply (the
   cross terms are accumulated asymmetrically). *)
let noncommutative_mul_components a b =
  match (M3.components a, M3.components b) with
  | [| a0; a1; a2 |], [| b0; b1; b2 |] ->
      let p, e = Eft.two_prod a0 b0 in
      (* asymmetric: a0*b1 is added before a1*b0, in separate roundings *)
      let t = ((a0 *. b1) +. e) +. (a1 *. b0) in
      let u = t +. ((a0 *. b2) +. (a1 *. b1) +. (a2 *. b0)) in
      let hi, lo = Eft.fast_two_sum p u in
      M3.of_components [| hi; lo; 0.0 |]
  | _ -> assert false

let () =
  print_endline "=== Conjugate products and commutativity ===\n";
  let rng = Random.State.make [| 314; 15 |] in
  let mk () = M3.of_components (Fpan.Gen.expansion rng ~n:3 ~e0_min:(-4) ~e0_max:4 ()) in
  let trials = 10000 in
  let fpan_nonzero = ref 0 and asym_nonzero = ref 0 in
  let worst_asym = ref 0.0 in
  for _ = 1 to trials do
    let a = mk () and b = mk () in
    (* imaginary part of (a+bi)(a-bi): ab + b(-a)... expanded as
       a*(-b) + b*a with each product through the multiply under test *)
    let z = C3.make a b in
    let w = C3.mul z (C3.conj z) in
    if not (M3.is_zero w.C3.im) then incr fpan_nonzero;
    (* Same thing with the asymmetric multiply. *)
    let ab = noncommutative_mul_components a b in
    let ba = noncommutative_mul_components b a in
    let im = M3.sub ba ab in
    if not (M3.is_zero im) then begin
      incr asym_nonzero;
      let rel = Float.abs (M3.to_float im) /. Float.abs (M3.to_float ab) in
      if rel > !worst_asym then worst_asym := rel
    end
  done;
  Printf.printf "%d random conjugate products (a+bi)(a-bi):\n\n" trials;
  Printf.printf "  FPAN multiply (commutativity layer): %d nonzero imaginary parts\n" !fpan_nonzero;
  Printf.printf "  asymmetric multiply                : %d nonzero imaginary parts\n" !asym_nonzero;
  Printf.printf "                                       worst |Im|/|ab| = %.2e\n\n" !worst_asym;
  assert (!fpan_nonzero = 0);
  print_endline "With the commutativity layer, ab and ba are bit-identical, so the";
  print_endline "conjugate product is exactly real - no rounding artifacts for";
  print_endline "eigensolvers working on Hermitian matrices."
