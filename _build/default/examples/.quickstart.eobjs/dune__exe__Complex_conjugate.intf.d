examples/complex_conjugate.mli:
