examples/hilbert_solve.ml: Array Blas Exact Float List Multifloat Printf
