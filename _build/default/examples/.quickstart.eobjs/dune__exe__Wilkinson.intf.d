examples/wilkinson.mli:
