examples/quickstart.ml: Array Eft Float Multifloat Printf
