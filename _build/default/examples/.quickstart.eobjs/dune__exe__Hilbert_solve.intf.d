examples/hilbert_solve.mli:
