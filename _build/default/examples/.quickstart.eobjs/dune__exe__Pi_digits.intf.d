examples/pi_digits.mli:
