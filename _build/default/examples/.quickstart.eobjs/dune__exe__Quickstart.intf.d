examples/quickstart.mli:
