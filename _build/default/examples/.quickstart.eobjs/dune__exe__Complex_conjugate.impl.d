examples/complex_conjugate.ml: Eft Float Fpan Multifloat Printf Random
