examples/kepler.ml: Array Float Multifloat Ode Printf
