examples/quadrature.mli:
