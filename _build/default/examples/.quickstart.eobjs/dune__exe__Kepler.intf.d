examples/kepler.mli:
