examples/wilkinson.ml: Array Float List Multifloat Printf
