examples/quadrature.ml: Array Float Multifloat Printf
