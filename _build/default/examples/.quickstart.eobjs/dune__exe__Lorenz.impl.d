examples/lorenz.ml: Array Float Multifloat Printf
