examples/iterative_refinement.ml: Array Float Linalg List Multifloat Printf Random
