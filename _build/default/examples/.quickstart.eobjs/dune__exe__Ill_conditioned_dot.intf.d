examples/ill_conditioned_dot.mli:
