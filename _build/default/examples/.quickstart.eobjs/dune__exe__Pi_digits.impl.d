examples/pi_digits.ml: Float Multifloat Printf
