examples/ill_conditioned_dot.ml: Array Blas Exact Float List Printf Random
