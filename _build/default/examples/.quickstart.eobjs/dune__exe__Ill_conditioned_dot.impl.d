examples/ill_conditioned_dot.ml: Array Blas Exact Float Int64 List Printf Random
