examples/lorenz.mli:
