(* Solving an ill-conditioned linear system in extended precision.

   The n x n Hilbert matrix has condition number ~ e^(3.5 n): at n = 13
   it is ~1e18 and double-precision Gaussian elimination returns garbage.
   We solve H x = b (with b chosen so the true solution is all ones)
   by LU factorization in each arithmetic, plus iterative refinement,
   through the same generic solver code.

   Run with: dune exec examples/hilbert_solve.exe *)

module Solver (N : Blas.Numeric.S) = struct
  (* Dense LU with partial pivoting over the Numeric interface.  We
     need subtraction and division, which Numeric.S deliberately leaves
     out (the BLAS kernels do not need them), so they are passed in. *)
  type ops = {
    sub : N.t -> N.t -> N.t;
    div : N.t -> N.t -> N.t;
  }

  let solve ops n (a : N.t array) (b : N.t array) =
    let m = Array.copy a in
    let x = Array.copy b in
    let piv = Array.init n (fun i -> i) in
    for k = 0 to n - 1 do
      (* partial pivot *)
      let best = ref k in
      for i = k + 1 to n - 1 do
        if Float.abs (N.to_float m.((piv.(i) * n) + k)) > Float.abs (N.to_float m.((piv.(!best) * n) + k))
        then best := i
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!best);
      piv.(!best) <- t;
      let pk = piv.(k) in
      for i = k + 1 to n - 1 do
        let pi_ = piv.(i) in
        let f = ops.div m.((pi_ * n) + k) m.((pk * n) + k) in
        m.((pi_ * n) + k) <- f;
        for j = k + 1 to n - 1 do
          m.((pi_ * n) + j) <- ops.sub m.((pi_ * n) + j) (N.mul f m.((pk * n) + j))
        done;
        x.(pi_) <- ops.sub x.(pi_) (N.mul f x.(pk))
      done
    done;
    (* back substitution *)
    let sol = Array.make n N.zero in
    for i = n - 1 downto 0 do
      let pi_ = piv.(i) in
      let acc = ref x.(pi_) in
      for j = i + 1 to n - 1 do
        acc := ops.sub !acc (N.mul m.((pi_ * n) + j) sol.(j))
      done;
      sol.(i) <- ops.div !acc m.((pi_ * n) + i)
    done;
    sol
end

(* Hilbert entries as exact rationals evaluated in each arithmetic:
   h_ij = 1 / (i + j + 1). *)
let hilbert_f n = Array.init (n * n) (fun k -> 1.0 /. Float.of_int ((k / n) + (k mod n) + 1))

let run_double n =
  let module S = Solver (Blas.Instances.Double) in
  let a = hilbert_f n in
  (* b = H * ones, computed exactly then rounded. *)
  let b =
    Array.init n (fun i ->
        let acc = ref Exact.zero in
        for j = 0 to n - 1 do
          acc := Exact.grow !acc a.((i * n) + j)
        done;
        Exact.approx !acc)
  in
  let sol = S.solve { S.sub = ( -. ); S.div = ( /. ) } n a b in
  Array.fold_left (fun acc v -> Float.max acc (Float.abs (v -. 1.0))) 0.0 sol

let run_mf (type a) (module M : Multifloat.Ops.S with type t = a) n =
  let module N = struct
    type t = a

    let name = "mf"
    let bits = M.precision_bits
    let zero = M.zero
    let of_float = M.of_float
    let to_float = M.to_float
    let add = M.add
    let mul = M.mul
  end in
  let module S = Solver (N) in
  (* Exact Hilbert entries at working precision: 1/(i+j+1) by division. *)
  let a = Array.init (n * n) (fun k -> M.div M.one (M.of_int ((k / n) + (k mod n) + 1))) in
  let b =
    Array.init n (fun i ->
        let acc = ref M.zero in
        for j = 0 to n - 1 do
          acc := M.add !acc a.((i * n) + j)
        done;
        !acc)
  in
  let sol = S.solve { S.sub = M.sub; S.div = M.div } n a b in
  Array.fold_left (fun acc v -> Float.max acc (Float.abs (M.to_float (M.sub v M.one)))) 0.0 sol

let () =
  print_endline "=== Hilbert systems: max |x_i - 1| of the computed solution ===\n";
  Printf.printf "%4s  %14s  %14s  %14s  %14s\n" "n" "double" "MultiFloat2" "MultiFloat3" "MultiFloat4";
  List.iter
    (fun n ->
      Printf.printf "%4d  %14.2e  %14.2e  %14.2e  %14.2e\n" n (run_double n)
        (run_mf (module Multifloat.Mf2) n)
        (run_mf (module Multifloat.Mf3) n)
        (run_mf (module Multifloat.Mf4) n))
    [ 6; 10; 13; 16; 20 ];
  print_endline "\nAt n = 13 (condition ~1e18) double precision has no correct digits;";
  print_endline "each extra expansion term buys ~16 more decimal digits of headroom."
