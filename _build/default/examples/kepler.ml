(* Long-term orbital integration: symplectic leapfrog at extended
   precision.

   A Kepler two-body orbit integrated for many periods is the standard
   stress test for energy and phase drift.  The leapfrog integrator is
   symplectic (energy error bounded), but at double precision the
   ROUNDING errors still accumulate as a random walk and eventually
   dominate; extended precision pushes that floor down by ~16 digits
   per extra term.

   Run with: dune exec examples/kepler.exe *)

module M = Multifloat.Mf2
module O = Ode.Make (Multifloat.Mf2)

let () =
  print_endline "=== Kepler orbit: 1000 periods of e=0.3 ellipse, leapfrog h=2pi/400 ===\n";
  (* State: q = (x, y), p = (vx, vy); mu = 1. *)
  let accel ~(q : M.t array) ~(a : M.t array) =
    let r2 = M.add (M.mul q.(0) q.(0)) (M.mul q.(1) q.(1)) in
    let r3 = M.mul r2 (M.sqrt r2) in
    a.(0) <- M.neg (M.div q.(0) r3);
    a.(1) <- M.neg (M.div q.(1) r3)
  in
  (* eccentricity 0.3 starting at perihelion *)
  let ecc = 0.3 in
  let q = [| M.of_float (1.0 -. ecc); M.zero |] in
  let p = [| M.zero; M.of_float (Float.sqrt ((1.0 +. ecc) /. (1.0 -. ecc))) |] in
  let energy () =
    let ke = M.scale_pow2 (M.add (M.mul p.(0) p.(0)) (M.mul p.(1) p.(1))) (-1) in
    let r = M.sqrt (M.add (M.mul q.(0) q.(0)) (M.mul q.(1) q.(1))) in
    M.to_float (M.sub ke (M.inv r))
  in
  let ang_mom () = M.to_float (M.sub (M.mul q.(0) p.(1)) (M.mul q.(1) p.(0))) in
  let e0 = energy () and l0 = ang_mom () in
  let steps_per_period = 400 in
  let h = M.div_float Multifloat.Elementary.F2.two_pi (Float.of_int steps_per_period) in
  let periods = 1000 in
  Printf.printf "%8s %16s %16s\n" "period" "energy drift" "ang.mom. drift";
  for pd = 1 to periods do
    for _ = 1 to steps_per_period do
      O.leapfrog_step ~accel ~h ~q ~p
    done;
    if pd = 1 || pd = 10 || pd = 100 || pd = 1000 then
      Printf.printf "%8d %16.3e %16.3e\n" pd (Float.abs (energy () -. e0))
        (Float.abs (ang_mom () -. l0))
  done;
  (* Same integration in plain double, for the rounding-floor
     comparison. *)
  let qd = [| 1.0 -. ecc; 0.0 |] and pd = [| 0.0; Float.sqrt ((1.0 +. ecc) /. (1.0 -. ecc)) |] in
  let hd = 2.0 *. Float.pi /. Float.of_int steps_per_period in
  let accel_d qx qy =
    let r2 = (qx *. qx) +. (qy *. qy) in
    let r3 = r2 *. Float.sqrt r2 in
    (-.qx /. r3, -.qy /. r3)
  in
  for _ = 1 to periods * steps_per_period do
    let ax, ay = accel_d qd.(0) qd.(1) in
    pd.(0) <- pd.(0) +. (hd /. 2.0 *. ax);
    pd.(1) <- pd.(1) +. (hd /. 2.0 *. ay);
    qd.(0) <- qd.(0) +. (hd *. pd.(0));
    qd.(1) <- qd.(1) +. (hd *. pd.(1));
    let ax, ay = accel_d qd.(0) qd.(1) in
    pd.(0) <- pd.(0) +. (hd /. 2.0 *. ax);
    pd.(1) <- pd.(1) +. (hd /. 2.0 *. ay)
  done;
  let l_double = Float.abs ((qd.(0) *. pd.(1)) -. (qd.(1) *. pd.(0)) -. l0) in
  Printf.printf "\nangular momentum drift after %d periods:\n" periods;
  Printf.printf "  double      : %.3e   (rounding random-walk)\n" l_double;
  Printf.printf "  MultiFloat2 : %.3e   (below the double display grid)\n"
    (Float.abs (ang_mom () -. l0));
  Printf.printf "\nfinal position: (%.12f, %.12f)\n" (M.to_float q.(0)) (M.to_float q.(1));
  print_endline "The leapfrog method conserves angular momentum exactly in exact";
  print_endline "arithmetic; what is left is the arithmetic itself.  At 107 bits the";
  print_endline "drift vanishes at double's resolution, while the energy drift (same";
  print_endline "in both runs) is the h^2 method error - cleanly separating the two";
  print_endline "error sources is precisely what extended precision buys."
