(* Wilkinson's polynomial: W(x) = (x-1)(x-2)...(x-20).

   The canonical demonstration of catastrophic ill-conditioning:
   expanded coefficients reach 20! ~ 2.4e18, and evaluating near the
   clustered roots in double precision yields noise orders of magnitude
   larger than the true value.  The condition number of the root at
   x = 14 with respect to the coefficient of x^19 is ~5e13.

   Run with: dune exec examples/wilkinson.exe *)

module M = Multifloat.Mf4
module P = Multifloat.Poly.Make (Multifloat.Mf4)

let () =
  print_endline "=== Wilkinson's polynomial W(x) = (x-1)(x-2)...(x-20) ===\n";
  let roots = Array.init 20 (fun i -> M.of_int (i + 1)) in
  let w = P.from_roots roots in
  Printf.printf "expanded: degree %d, |a_0| = 20! = %s\n\n" (P.degree w)
    (M.to_string ~digits:20 (M.abs w.(0)));

  (* Evaluate between the roots: the true value of W(k + 1/2) is a
     modest number, but the double-precision Horner noise is enormous. *)
  let horner_double c x =
    let acc = ref 0.0 in
    for i = Array.length c - 1 downto 0 do
      acc := (!acc *. x) +. M.to_float c.(i)
    done;
    !acc
  in
  Printf.printf "%8s %22s %22s %14s\n" "x" "double Horner" "215-bit Horner" "rel. err (dbl)";
  List.iter
    (fun x ->
      let exact = P.eval w (M.of_string x) in
      let dbl = horner_double w (float_of_string x) in
      let e = M.to_float exact in
      Printf.printf "%8s %22.8e %22.8e %14.1e\n" x dbl e (Float.abs ((dbl -. e) /. e)))
    [ "10.5"; "14.5"; "16.5"; "19.5" ];

  (* Root refinement: Newton in extended precision recovers the roots
     from the EXPANDED coefficients, which double cannot do for the
     badly conditioned middle roots. *)
  print_endline "\nNewton refinement of the root near 14 (from the expanded coefficients):";
  let refined = P.newton_root w ~x0:(M.of_string "14.007") () in
  Printf.printf "  refined root : %s\n" (M.to_string ~digits:40 refined);
  Printf.printf "  |root - 14|  : %.3e\n" (Float.abs (M.to_float (M.sub refined (M.of_int 14))));

  (* Wilkinson's perturbation: add 2^-23 to the x^19 coefficient and
     watch the root migrate - faithfully resolved at 215 bits. *)
  let perturbed = Array.copy w in
  perturbed.(19) <- M.add_float perturbed.(19) (Float.ldexp 1.0 (-23));
  let moved = P.newton_root perturbed ~x0:(M.of_string "13.8") () in
  Printf.printf "\nafter adding 2^-23 to a_19, the root near 14 moves to:\n  %s\n"
    (M.to_string ~digits:30 moved);
  Printf.printf "  displacement: %.6f  (Wilkinson's classic sensitivity)\n"
    (Float.abs (M.to_float (M.sub moved (M.of_int 14))))
