(* Generating Gauss-Legendre quadrature rules in extended precision.

   Quadrature nodes and weights are a textbook case for extended
   precision: tables are computed once at high accuracy (historically
   with MPFR or quad-double) and then baked into double-precision
   libraries.  Nodes are roots of the Legendre polynomial P_n, found by
   Newton iteration at 215 bits via the three-term recurrence; weights
   are w_i = 2 / ((1 - x_i^2) P_n'(x_i)^2).

   Run with: dune exec examples/quadrature.exe *)

module M = Multifloat.Mf4
module F = Multifloat.Elementary.F4

(* P_n(x) and P_n'(x) by the recurrence
   (k+1) P_{k+1} = (2k+1) x P_k - k P_{k-1}. *)
let legendre n x =
  let p0 = ref M.one and p1 = ref x in
  if n = 0 then (M.one, M.zero)
  else begin
    for k = 1 to n - 1 do
      let a = M.div (M.of_int ((2 * k) + 1)) (M.of_int (k + 1)) in
      let b = M.div (M.of_int k) (M.of_int (k + 1)) in
      let p2 = M.sub (M.mul a (M.mul x !p1)) (M.mul b !p0) in
      p0 := !p1;
      p1 := p2
    done;
    (* P_n' (x) = n (x P_n - P_{n-1}) / (x^2 - 1) *)
    let num = M.mul (M.of_int n) (M.sub (M.mul x !p1) !p0) in
    let den = M.sub (M.mul x x) M.one in
    (!p1, M.div num den)
  end

let gauss_legendre n =
  let nodes = Array.make n M.zero in
  let weights = Array.make n M.zero in
  for i = 0 to n - 1 do
    (* Chebyshev initial guess, then Newton at full precision. *)
    let guess =
      Float.cos (Float.pi *. (Float.of_int i +. 0.75) /. (Float.of_int n +. 0.5))
    in
    let x = ref (M.of_float guess) in
    for _ = 1 to 6 do
      let p, d = legendre n !x in
      x := M.sub !x (M.div p d)
    done;
    let _, d = legendre n !x in
    nodes.(i) <- !x;
    weights.(i) <- M.div (M.of_int 2) (M.mul (M.sub M.one (M.mul !x !x)) (M.mul d d))
  done;
  (nodes, weights)

let () =
  print_endline "=== Gauss-Legendre rules at 215 bits ===\n";
  let n = 12 in
  let nodes, weights = gauss_legendre n in
  Printf.printf "%d-point rule (positive nodes):\n" n;
  for i = 0 to n - 1 do
    if M.to_float nodes.(i) >= 0.0 then
      Printf.printf "  x = %s\n  w = %s\n" (M.to_string ~digits:40 nodes.(i))
        (M.to_string ~digits:40 weights.(i))
  done;
  (* Sanity: weights sum to 2 (integral of 1 over [-1, 1]). *)
  let wsum = Array.fold_left M.add M.zero weights in
  Printf.printf "\nsum of weights - 2 = %s\n" (M.to_string ~digits:3 (M.sub wsum (M.of_int 2)));
  (* Integrate exp over [-1, 1]: exact value e - 1/e. *)
  let integral =
    Array.fold_left
      (fun acc i -> M.add acc (M.mul weights.(i) (F.exp nodes.(i))))
      M.zero
      (Array.init n (fun i -> i))
  in
  let exact = M.sub F.e (M.inv F.e) in
  Printf.printf "\nintegral of exp on [-1,1]:\n  quadrature: %s\n  exact     : %s\n"
    (M.to_string ~digits:45 integral) (M.to_string ~digits:45 exact);
  Printf.printf "  error     : %.3e\n" (Float.abs (M.to_float (M.sub integral exact)));
  print_endline "\nThe 12-point rule integrates exp to ~1e-31: the rule itself is the";
  print_endline "accuracy limit, not the arithmetic - which is the point of generating";
  print_endline "quadrature tables in extended precision."
