(* Reproducibility of chaotic dynamics: integrating the Lorenz system.

   Chaotic systems amplify rounding differences exponentially (one of
   the paper's motivating applications: nonlinear dynamical systems).
   We integrate the Lorenz attractor with RK4 in double and in 2-/4-term
   MultiFloat arithmetic and report when each precision's trajectory
   diverges from a 215-bit reference.

   Run with: dune exec examples/lorenz.exe *)

module Integrator (M : Multifloat.Ops.S) = struct
  type state = { x : M.t; y : M.t; z : M.t }

  let sigma = M.of_int 10
  let rho = M.of_int 28
  let beta = M.div (M.of_int 8) (M.of_int 3)

  let deriv s =
    {
      x = M.mul sigma (M.sub s.y s.x);
      y = M.sub (M.mul s.x (M.sub rho s.z)) s.y;
      z = M.sub (M.mul s.x s.y) (M.mul beta s.z);
    }

  let axpy a v w = { x = M.add (M.mul a v.x) w.x; y = M.add (M.mul a v.y) w.y; z = M.add (M.mul a v.z) w.z }

  let rk4_step h s =
    let half = M.scale_pow2 h (-1) in
    let k1 = deriv s in
    let k2 = deriv (axpy half k1 s) in
    let k3 = deriv (axpy half k2 s) in
    let k4 = deriv (axpy h k3 s) in
    let sixth = M.div h (M.of_int 6) in
    let third = M.div h (M.of_int 3) in
    axpy sixth k1 (axpy third k2 (axpy third k3 (axpy sixth k4 s)))

  let run steps h0 =
    let h = M.of_string h0 in
    let s = ref { x = M.one; y = M.one; z = M.of_float 20.0 } in
    let states = Array.make (steps + 1) !s in
    for i = 1 to steps do
      s := rk4_step h !s;
      states.(i) <- !s
    done;
    Array.map (fun s -> (M.to_float s.x, M.to_float s.y, M.to_float s.z)) states
end

let () =
  print_endline "=== Lorenz attractor: divergence from the 215-bit reference ===\n";
  let steps = 12000 and h = "0.005" in
  let module I2 = Integrator (Multifloat.Mf2) in
  let module I3 = Integrator (Multifloat.Mf3) in
  let module I4 = Integrator (Multifloat.Mf4) in
  (* Double run via the same integrator over a 1-term-like wrapper is
     unnecessary: use plain floats directly. *)
  let deriv (x, y, z) = (10.0 *. (y -. x), (x *. (28.0 -. z)) -. y, (x *. y) -. (8.0 /. 3.0 *. z)) in
  let axpy a (vx, vy, vz) (wx, wy, wz) = ((a *. vx) +. wx, (a *. vy) +. wy, (a *. vz) +. wz) in
  let rk4 h s =
    let k1 = deriv s in
    let k2 = deriv (axpy (h /. 2.0) k1 s) in
    let k3 = deriv (axpy (h /. 2.0) k2 s) in
    let k4 = deriv (axpy h k3 s) in
    axpy (h /. 6.0) k1 (axpy (h /. 3.0) k2 (axpy (h /. 3.0) k3 (axpy (h /. 6.0) k4 s)))
  in
  let dbl = Array.make (steps + 1) (1.0, 1.0, 20.0) in
  for i = 1 to steps do
    dbl.(i) <- rk4 0.005 dbl.(i - 1)
  done;
  let t2 = I2.run steps h in
  let t3 = I3.run steps h in
  let t4 = I4.run steps h in
  let dist (x1, y1, z1) (x2, y2, z2) =
    Float.sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0) +. ((z1 -. z2) ** 2.0))
  in
  let diverged traj =
    let rec go i = if i > steps then steps else if dist traj.(i) t4.(i) > 1e-3 then i else go (i + 1) in
    go 0
  in
  Printf.printf "steps until >1e-3 from reference (of %d):\n" steps;
  Printf.printf "  double      : %d\n" (diverged dbl);
  Printf.printf "  MultiFloat2 : %d\n" (diverged t2);
  Printf.printf "  MultiFloat3 : %d\n" (diverged t3);
  let tx, ty, tz = t4.(steps) in
  Printf.printf "\nreference state after %d steps: (%.6f, %.6f, %.6f)\n" steps tx ty tz;
  print_endline "Higher precision pushes the reproducibility horizon out linearly";
  print_endline "in the number of carried bits (Lyapunov growth is exponential)."
