(* Quickstart: a tour of the MultiFloat public API.

   Run with: dune exec examples/quickstart.exe *)

module M2 = Multifloat.Mf2 (* ~107-bit (quadruple) *)
module M3 = Multifloat.Mf3 (* ~161-bit (sextuple) *)
module M4 = Multifloat.Mf4 (* ~215-bit (octuple) *)

let () =
  print_endline "=== MultiFloats quickstart ===\n";

  (* Construct values from floats, ints, or decimal strings. *)
  let a = M2.of_string "1.1" in
  let b = M2.of_float 0.1 in
  Printf.printf "At 107 bits, the decimal 1.1 and the double 0.1 differ:\n";
  Printf.printf "  of_string \"1.1\"      = %s\n" (M2.to_string a);
  Printf.printf "  of_float 0.1 (double) = %s\n" (M2.to_string b);
  Printf.printf "  their difference      = %s\n\n" (M2.to_string (M2.sub a (M2.add b M2.one)));

  (* Full arithmetic: +, -, *, /, sqrt, comparisons, powers. *)
  let open M4.Infix in
  let two = M4.of_int 2 in
  let sqrt2 = M4.sqrt two in
  Printf.printf "sqrt 2 at 215 bits = %s\n" (M4.to_string sqrt2);
  Printf.printf "sqrt 2 ^ 2 - 2     = %s\n\n" (M4.to_string ((sqrt2 * sqrt2) - two));

  (* The classic double-precision failure: (1e16 + pi) - 1e16. *)
  let big = M3.of_string "1e16" in
  let pi = M3.of_string "3.14159265358979323846264338327950288" in
  let recovered = M3.sub (M3.add big pi) big in
  Printf.printf "(1e16 + pi) - 1e16 in double:   %.17g\n" ((1e16 +. Float.pi) -. 1e16);
  Printf.printf "(1e16 + pi) - 1e16 at 161 bits: %s\n\n" (M3.to_string ~digits:30 recovered);

  (* Figure 1 of the paper: a high-precision constant decomposes into a
     nonoverlapping expansion of machine floats. *)
  let e_const = M4.of_string "2.71828182845904523536028747135266249775724709369995957496697" in
  Printf.printf "e as a nonoverlapping 4-term expansion (components in hex):\n";
  Array.iteri (Printf.printf "  x%d = %h\n") (M4.components e_const);
  Printf.printf "  nonoverlapping (Eq. 8 of the paper): %b\n\n"
    (Eft.is_nonoverlapping_seq (M4.components e_const));

  (* Precision ladder: the same computation at each width. *)
  let residual (type a) (module M : Multifloat.Ops.S with type t = a) =
    let seven = M.of_int 7 in
    let s = M.sqrt seven in
    M.to_string ~digits:3 (M.sub (M.mul s s) seven)
  in
  Printf.printf "sqrt(7)^2 - 7 at increasing precision:\n";
  Printf.printf "  double    : %.3g\n" ((Float.sqrt 7.0 *. Float.sqrt 7.0) -. 7.0);
  Printf.printf "  2 terms   : %s\n" (residual (module M2));
  Printf.printf "  3 terms   : %s\n" (residual (module M3));
  Printf.printf "  4 terms   : %s\n" (residual (module M4));
  print_endline "\nDone.  See examples/ for domain-specific programs."
