(* Mixed-precision iterative refinement: the workflow the paper's
   introduction motivates.  Factor once in fast double precision,
   evaluate residuals in extended precision, and recover a solution
   accurate to the extended precision at nearly double-precision speed
   (one O(n^3) factorization; each refinement step is O(n^2)).

   Run with: dune exec examples/iterative_refinement.exe *)

module M = Multifloat.Mf4
module L = Linalg.Make (Multifloat.Mf4)
module R = Linalg.Refine (Multifloat.Mf4)

let rng = Random.State.make [| 99; 1 |]

(* A test matrix with tunable condition number ~10^c: diagonal of
   decaying singular-value-like magnitudes, mixed by random row ops. *)
let conditioned n c =
  let a = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    a.((i * n) + i) <- 10.0 ** (-.Float.of_int (c * i) /. Float.of_int (n - 1))
  done;
  (* random unit row operations keep the condition roughly c decades *)
  for _ = 1 to 3 * n do
    let i = Random.State.int rng n and j = Random.State.int rng n in
    if i <> j then begin
      let f = Random.State.float rng 2.0 -. 1.0 in
      for k = 0 to n - 1 do
        a.((i * n) + k) <- a.((i * n) + k) +. (f *. a.((j * n) + k))
      done
    end
  done;
  a

let () =
  print_endline "=== Mixed-precision iterative refinement (double LU + 215-bit residuals) ===\n";
  Printf.printf "%6s  %16s  %16s  %6s\n" "cond" "double-only err" "refined err" "iters";
  let n = 24 in
  List.iter
    (fun c ->
      let a = conditioned n c in
      let am = L.mat_of_floats a in
      let x_true = Array.init n (fun i -> M.div (M.of_int (1 + i)) (M.of_int 7)) in
      let b = L.mat_vec ~n am x_true in
      (* double-precision-only solve for comparison *)
      let xd, _ = R.solve ~n ~a ~b ~max_iter:0 () in
      let xr, stats = R.solve ~n ~a ~b () in
      let err x =
        let worst = ref 0.0 in
        Array.iteri
          (fun i xi -> worst := Float.max !worst (Float.abs (M.to_float (M.sub xi x_true.(i)))))
          x;
        !worst
      in
      Printf.printf "%6s  %16.2e  %16.2e  %6d\n"
        (Printf.sprintf "1e%d" c) (err xd) (err xr) stats.R.iterations)
    [ 2; 6; 10; 13 ];
  print_endline "\nRefinement recovers ~64-digit solutions from a 16-digit factorization";
  print_endline "whenever double LU is stable enough to contract (condition below ~1e15)."
