bench/json_out.ml: Buffer Char Float List Printf String
