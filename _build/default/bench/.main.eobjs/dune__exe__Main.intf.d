bench/main.mli:
