(* Tests for the extended BLAS level-1/2 routines, run at every
   precision. *)

let rng = Random.State.make [| 0x1e1; 8 |]

module Suite (M : Multifloat.Ops.S) = struct
  module L = Blas.Level1.Make (M)

let random_vec n = Array.init n (fun _ -> M.of_float (Random.State.float rng 4.0 -. 2.0))

let tol = Float.ldexp 1.0 (-(M.precision_bits - 15))

let close a b =
  let d = Float.abs (M.to_float (M.sub a b)) in
  let s = Float.max 1.0 (Float.abs (M.to_float b)) in
  d <= s *. tol

let test_scal_copy_swap () =
  let x = random_vec 20 in
  let orig = Array.copy x in
  L.scal ~alpha:(M.of_int 3) x;
  Array.iteri
    (fun i v -> if not (close v (M.mul (M.of_int 3) orig.(i))) then Alcotest.fail "scal") x;
  let y = Array.make 20 M.zero in
  L.copy ~src:x ~dst:y;
  Array.iteri (fun i v -> if not (M.equal v x.(i)) then Alcotest.fail "copy") y;
  let z = random_vec 20 in
  let zc = Array.copy z in
  L.swap y z;
  Array.iteri (fun i v -> if not (M.equal v zc.(i)) then Alcotest.fail "swap y") y;
  Array.iteri (fun i v -> if not (M.equal v x.(i)) then Alcotest.fail "swap z") z

let test_asum_nrm2 () =
  let x = Array.map M.of_float [| 3.0; -4.0; 0.0; 12.0 |] in
  Alcotest.(check bool) "asum" true (M.equal (L.asum x) (M.of_int 19));
  Alcotest.(check bool) "nrm2" true (close (L.nrm2 x) (M.of_int 13));
  Alcotest.(check bool) "nrm2 empty-ish" true (M.is_zero (L.nrm2 (Array.make 3 M.zero)));
  (* overflow safety: components near DBL_MAX/2 *)
  let big = Array.make 4 (M.of_float (Float.ldexp 1.0 600)) in
  let n = L.nrm2 big in
  Alcotest.(check bool) "no overflow" true (M.is_finite n);
  Alcotest.(check bool) "value" true (close n (M.of_float (Float.ldexp 2.0 600)))

let test_iamax () =
  let x = Array.map M.of_float [| 1.0; -7.0; 7.0; 2.0 |] in
  Alcotest.(check int) "first maximal" 1 (L.iamax x)

let test_rot_givens () =
  for _ = 1 to 100 do
    let a = M.of_float (Random.State.float rng 4.0 -. 2.0) in
    let b = M.of_float (Random.State.float rng 4.0 -. 2.0) in
    let c, s, r = L.givens ~a ~b in
    (* c a + s b = r;  -s a + c b = 0;  c^2 + s^2 = 1 *)
    if not (close (M.add (M.mul c a) (M.mul s b)) r) then Alcotest.fail "givens r";
    let zero = M.sub (M.mul c b) (M.mul s a) in
    if Float.abs (M.to_float zero) > tol then Alcotest.fail "givens annihilation";
    if not (close (M.add (M.mul c c) (M.mul s s)) M.one) then Alcotest.fail "givens unit"
  done;
  (* rot preserves the 2-norm of each column pair *)
  let x = random_vec 10 and y = random_vec 10 in
  let before = M.add (M.mul (L.nrm2 x) (L.nrm2 x)) (M.mul (L.nrm2 y) (L.nrm2 y)) in
  let c, s, _ = L.givens ~a:(M.of_float 0.6) ~b:(M.of_float 0.8) in
  L.rot ~c ~s x y;
  let after = M.add (M.mul (L.nrm2 x) (L.nrm2 x)) (M.mul (L.nrm2 y) (L.nrm2 y)) in
  Alcotest.(check bool) "rotation preserves norm" true (close after before)

let test_axpby () =
  let x = Array.map M.of_float [| 1.0; 2.0 |] in
  let y = Array.map M.of_float [| 10.0; 20.0 |] in
  L.axpby ~alpha:(M.of_int 2) ~x ~beta:(M.of_int 3) ~y;
  Alcotest.(check bool) "axpby 0" true (M.equal y.(0) (M.of_int 32));
  Alcotest.(check bool) "axpby 1" true (M.equal y.(1) (M.of_int 64))

let test_ger () =
  let m = 3 and n = 2 in
  let x = Array.map M.of_float [| 1.0; 2.0; 3.0 |] in
  let y = Array.map M.of_float [| 10.0; 100.0 |] in
  let a = Array.make (m * n) M.one in
  L.ger ~m ~n ~alpha:M.one ~x ~y ~a;
  let expect = [| 11; 101; 21; 201; 31; 301 |] in
  Array.iteri
    (fun k e -> if not (M.equal a.(k) (M.of_int e)) then Alcotest.failf "ger %d" k)
    expect

  let suite =
    [ Alcotest.test_case "scal/copy/swap" `Quick test_scal_copy_swap;
      Alcotest.test_case "asum/nrm2" `Quick test_asum_nrm2;
      Alcotest.test_case "iamax" `Quick test_iamax;
      Alcotest.test_case "rot/givens" `Quick test_rot_givens;
      Alcotest.test_case "axpby" `Quick test_axpby;
      Alcotest.test_case "ger" `Quick test_ger ]
end

module S2 = Suite (Multifloat.Mf2)
module S3 = Suite (Multifloat.Mf3)
module S4 = Suite (Multifloat.Mf4)

let () = Alcotest.run "level1" [ ("mf2", S2.suite); ("mf3", S3.suite); ("mf4", S4.suite) ]
