(* Tests for the extended-precision FFT. *)

module M = Multifloat.Mf3
module F = Multifloat.Fft.Make (Multifloat.Mf3)
module C = F.C

let rng = Random.State.make [| 0xff7; 31 |]

let random_signal n =
  Array.init n (fun _ ->
      C.make (M.of_float (Random.State.float rng 2.0 -. 1.0))
        (M.of_float (Random.State.float rng 2.0 -. 1.0)))

let cdist a b =
  let d = C.sub a b in
  Float.sqrt ((M.to_float d.C.re ** 2.0) +. (M.to_float d.C.im ** 2.0))

let max_dist a b =
  let worst = ref 0.0 in
  Array.iteri (fun i ai -> worst := Float.max !worst (cdist ai b.(i))) a;
  !worst

let test_roundtrip () =
  List.iter
    (fun n ->
      let x = random_signal n in
      let back = F.ifft (F.fft x) in
      let d = max_dist x back in
      if d > 1e-40 then Alcotest.failf "fft/ifft roundtrip n=%d: %.2e" n d)
    [ 1; 2; 4; 8; 32; 128 ]

let test_matches_naive () =
  List.iter
    (fun n ->
      let x = random_signal n in
      let fast = F.fft x in
      let slow = F.dft_naive x in
      let d = max_dist fast slow in
      if d > 1e-40 then Alcotest.failf "fft vs naive n=%d: %.2e" n d)
    [ 2; 4; 8; 16 ]

let test_delta_and_constant () =
  let n = 8 in
  (* delta -> all ones *)
  let delta = Array.init n (fun i -> if i = 0 then C.one else C.zero) in
  let fd = F.fft delta in
  Array.iter
    (fun z -> if cdist z C.one > 1e-45 then Alcotest.fail "fft delta should be all ones")
    fd;
  (* constant -> n at bin 0, 0 elsewhere *)
  let ones = Array.make n C.one in
  let fo = F.fft ones in
  if cdist fo.(0) (C.make (M.of_int n) M.zero) > 1e-44 then Alcotest.fail "bin 0";
  for k = 1 to n - 1 do
    if cdist fo.(k) C.zero > 1e-44 then Alcotest.failf "bin %d nonzero" k
  done

let test_parseval () =
  let n = 64 in
  let x = random_signal n in
  let fx = F.fft x in
  let energy v = Array.fold_left (fun acc z -> M.add acc (C.norm2 z)) M.zero v in
  let lhs = M.mul_float (energy x) (Float.of_int n) in
  let rhs = energy fx in
  let d = Float.abs (M.to_float (M.sub lhs rhs)) in
  if d > Float.abs (M.to_float rhs) *. 1e-40 then Alcotest.failf "parseval: %.2e" d

let test_linearity () =
  let n = 16 in
  let x = random_signal n and y = random_signal n in
  let sum = Array.init n (fun i -> C.add x.(i) y.(i)) in
  let f1 = F.fft sum in
  let fx = F.fft x and fy = F.fft y in
  let f2 = Array.init n (fun i -> C.add fx.(i) fy.(i)) in
  if max_dist f1 f2 > 1e-42 then Alcotest.fail "linearity"

let test_convolution () =
  (* Cyclic convolution vs the direct O(n^2) sum. *)
  let n = 16 in
  let x = Array.init n (fun _ -> M.of_float (Random.State.float rng 2.0 -. 1.0)) in
  let y = Array.init n (fun _ -> M.of_float (Random.State.float rng 2.0 -. 1.0)) in
  let via_fft = F.convolve x y in
  for k = 0 to n - 1 do
    let direct = ref M.zero in
    for j = 0 to n - 1 do
      direct := M.add !direct (M.mul x.(j) y.((k - j + n) mod n))
    done;
    let d = Float.abs (M.to_float (M.sub via_fft.(k) !direct)) in
    if d > 1e-40 then Alcotest.failf "convolution bin %d: %.2e" k d
  done

let test_precision_advantage () =
  (* The butterfly error at 161 bits is far below double's: transform
     then invert a large signal and look at the worst coefficient. *)
  let n = 512 in
  let x = random_signal n in
  let d = max_dist x (F.ifft (F.fft x)) in
  Alcotest.(check bool) (Printf.sprintf "deep roundtrip %.2e" d) true (d < 1e-40)

let test_rejects_non_pow2 () =
  match F.fft (random_signal 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length 3 should be rejected"

let () =
  Alcotest.run "fft"
    [ ( "fft",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "matches naive" `Quick test_matches_naive;
          Alcotest.test_case "delta/constant" `Quick test_delta_and_constant;
          Alcotest.test_case "parseval" `Quick test_parseval;
          Alcotest.test_case "linearity" `Quick test_linearity;
          Alcotest.test_case "convolution" `Quick test_convolution;
          Alcotest.test_case "deep roundtrip" `Quick test_precision_advantage;
          Alcotest.test_case "rejects non-pow2" `Quick test_rejects_non_pow2 ] ) ]
