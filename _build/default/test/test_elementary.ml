(* Tests for the elementary transcendental functions, by identities,
   known values, and cross-precision agreement. *)

let rng = Random.State.make [| 0xe1e; 41 |]

module Check (M : Multifloat.Ops.S) (F : module type of Multifloat.Elementary.Make (M)) = struct
  (* Elementary functions are allowed a small multiple of the last
     expansion term. *)
  let budget = M.precision_bits - 14

  let close ?(bits = budget) a b =
    if M.is_zero b then Float.abs (M.to_float a) <= Float.ldexp 1.0 (-bits)
    else begin
      let d = M.to_float (M.abs (M.sub a b)) in
      let s = Float.abs (M.to_float b) in
      d <= s *. Float.ldexp 1.0 (-bits)
    end

  let checkc name a b = if not (close a b) then Alcotest.failf "%s: %s vs %s" name (M.to_string a) (M.to_string b)

  let random_small () = M.of_float (Random.State.float rng 20.0 -. 10.0)

  let test_exp_log () =
    checkc "exp 0" (F.exp M.zero) M.one;
    checkc "exp 1" (F.exp M.one) F.e;
    checkc "log 1" (F.log M.one) M.zero;
    checkc "log e" (F.log F.e) M.one;
    Alcotest.(check bool) "log -1 nan" true (M.is_nan (F.log (M.of_int (-1))));
    Alcotest.(check bool) "log 0 -inf" true (M.to_float (F.log M.zero) = Float.neg_infinity);
    Alcotest.(check bool) "exp -1000 = 0" true (M.is_zero (F.exp (M.of_int (-1000))));
    Alcotest.(check bool) "exp 1000 = inf" true (M.to_float (F.exp (M.of_int 1000)) = Float.infinity);
    for _ = 1 to 60 do
      let x = random_small () in
      checkc "log (exp x) = x" (F.log (F.exp x)) x;
      let y = random_small () in
      checkc "exp(x+y) = exp x exp y" (F.exp (M.add x y)) (M.mul (F.exp x) (F.exp y))
    done;
    for _ = 1 to 60 do
      let x = M.abs (random_small ()) in
      let y = M.abs (random_small ()) in
      if not (M.is_zero x || M.is_zero y) then
        checkc "log(xy) = log x + log y" (F.log (M.mul x y)) (M.add (F.log x) (F.log y))
    done

  let test_log_bases () =
    checkc "log2 8" (F.log2 (M.of_int 8)) (M.of_int 3);
    checkc "log10 1000" (F.log10 (M.of_int 1000)) (M.of_int 3);
    checkc "log2 2^-20" (F.log2 (M.scale_pow2 M.one (-20))) (M.of_int (-20))

  let test_pow () =
    checkc "2^10" (F.pow (M.of_int 2) (M.of_int 10)) (M.of_int 1024);
    checkc "2^0.5" (F.pow (M.of_int 2) (M.of_string "0.5")) F.sqrt2;
    checkc "x^-1" (F.pow (M.of_int 7) (M.of_int (-1))) (M.inv (M.of_int 7));
    for _ = 1 to 30 do
      let x = M.add (M.abs (random_small ())) M.one in
      let a = M.of_float (Random.State.float rng 3.0) in
      let b = M.of_float (Random.State.float rng 3.0) in
      checkc "x^(a+b) = x^a x^b" (F.pow x (M.add a b)) (M.mul (F.pow x a) (F.pow x b))
    done

  let test_trig_identities () =
    checkc "sin 0" (F.sin M.zero) M.zero;
    checkc "cos 0" (F.cos M.zero) M.one;
    checkc "sin pi/2" (F.sin F.half_pi) M.one;
    checkc "cos pi" (F.cos F.pi) (M.neg M.one);
    (* sin pi is ~0 at the precision of the pi constant *)
    Alcotest.(check bool) "sin pi ~ 0" true
      (Float.abs (M.to_float (F.sin F.pi)) < Float.ldexp 1.0 (-(M.precision_bits - 6)));
    for _ = 1 to 80 do
      let x = M.of_float (Random.State.float rng 200.0 -. 100.0) in
      let s, c = F.sin_cos x in
      checkc "sin^2 + cos^2 = 1" (M.add (M.mul s s) (M.mul c c)) M.one;
      checkc "sin(-x) = -sin x" (F.sin (M.neg x)) (M.neg s);
      checkc "cos(-x) = cos x" (F.cos (M.neg x)) c;
      checkc "sin(x+2pi) = sin x" (F.sin (M.add x F.two_pi)) s
    done;
    (* double angle *)
    for _ = 1 to 40 do
      let x = random_small () in
      let s, c = F.sin_cos x in
      checkc "sin 2x" (F.sin (M.scale_pow2 x 1)) (M.scale_pow2 (M.mul s c) 1);
      checkc "cos 2x" (F.cos (M.scale_pow2 x 1)) (M.sub (M.mul c c) (M.mul s s))
    done

  let test_inverse_trig () =
    checkc "atan 1" (F.atan M.one) F.quarter_pi;
    checkc "atan 0" (F.atan M.zero) M.zero;
    checkc "acos -1" (F.acos (M.neg M.one)) F.pi;
    checkc "asin 1" (F.asin M.one) F.half_pi;
    Alcotest.(check bool) "asin 2 nan" true (M.is_nan (F.asin (M.of_int 2)));
    for _ = 1 to 60 do
      let x = M.of_float (Random.State.float rng 3.0 -. 1.5) in
      checkc "tan (atan x) = x" (F.tan (F.atan x)) x;
      let y = M.of_float (Random.State.float rng 1.98 -. 0.99) in
      checkc "sin (asin y) = y" (F.sin (F.asin y)) y;
      checkc "asin + acos = pi/2" (M.add (F.asin y) (F.acos y)) F.half_pi
    done

  let test_atan2 () =
    checkc "atan2 1 1" (F.atan2 M.one M.one) F.quarter_pi;
    checkc "atan2 1 -1" (F.atan2 M.one (M.neg M.one)) (M.mul_float F.quarter_pi 3.0);
    checkc "atan2 -1 -1" (F.atan2 (M.neg M.one) (M.neg M.one)) (M.mul_float F.quarter_pi (-3.0));
    checkc "atan2 1 0" (F.atan2 M.one M.zero) F.half_pi;
    checkc "atan2 -1 0" (F.atan2 (M.neg M.one) M.zero) (M.neg F.half_pi);
    for _ = 1 to 40 do
      let y = random_small () and x = random_small () in
      if M.to_float x <> 0.0 || M.to_float y <> 0.0 then begin
        let a = F.atan2 y x in
        let r = M.sqrt (M.add (M.mul x x) (M.mul y y)) in
        checkc "r sin(atan2) = y" (M.mul r (F.sin a)) y;
        checkc "r cos(atan2) = x" (M.mul r (F.cos a)) x
      end
    done

  let test_hyperbolic () =
    checkc "sinh 0" (F.sinh M.zero) M.zero;
    checkc "cosh 0" (F.cosh M.zero) M.one;
    for _ = 1 to 60 do
      let x = M.of_float (Random.State.float rng 10.0 -. 5.0) in
      let s = F.sinh x and c = F.cosh x in
      checkc "cosh^2 - sinh^2 = 1" (M.sub (M.mul c c) (M.mul s s)) M.one;
      checkc "tanh = sinh/cosh" (F.tanh x) (M.div s c);
      checkc "sinh(-x) = -sinh x" (F.sinh (M.neg x)) (M.neg s)
    done;
    (* small-argument branch agrees with the exp formula *)
    let x = M.of_string "0.0123" in
    let ex = F.exp x in
    (* the exp route cancels ~7 bits; the Taylor branch is the sharper
       one, so compare with matching slack *)
    let reference = M.scale_pow2 (M.sub ex (M.inv ex)) (-1) in
    if not (close ~bits:(budget - 10) (F.sinh x) reference) then
      Alcotest.failf "sinh small: %s vs %s" (M.to_string (F.sinh x)) (M.to_string reference)

  let suite name =
    ( name,
      [ Alcotest.test_case "exp/log" `Quick test_exp_log;
        Alcotest.test_case "log bases" `Quick test_log_bases;
        Alcotest.test_case "pow" `Quick test_pow;
        Alcotest.test_case "trig identities" `Quick test_trig_identities;
        Alcotest.test_case "inverse trig" `Quick test_inverse_trig;
        Alcotest.test_case "atan2" `Quick test_atan2;
        Alcotest.test_case "hyperbolic" `Quick test_hyperbolic ] )
end

module C2 = Check (Multifloat.Mf2) (Multifloat.Elementary.F2)
module C3 = Check (Multifloat.Mf3) (Multifloat.Elementary.F3)
module C4 = Check (Multifloat.Mf4) (Multifloat.Elementary.F4)

(* Cross-precision: F2 and F4 must agree to F2's precision. *)
let test_cross_precision () =
  let module M2 = Multifloat.Mf2 in
  let module M4 = Multifloat.Mf4 in
  let to4 x = M4.of_string (M2.to_string ~digits:40 x) in
  for _ = 1 to 40 do
    let xf = Random.State.float rng 8.0 -. 4.0 in
    let e2 = to4 (Multifloat.Elementary.F2.exp (M2.of_float xf)) in
    let e4 = Multifloat.Elementary.F4.exp (M4.of_float xf) in
    let d = Float.abs (M4.to_float (M4.sub e2 e4)) in
    if d > Float.abs (M4.to_float e4) *. Float.ldexp 1.0 (-88) then
      Alcotest.failf "exp cross-precision at %h: diff %h" xf d
  done

(* Constants vs the software FPU's decimal parser. *)
let test_constants_vs_bigfloat () =
  let check name m dec =
    let b = Bigfloat.of_string ~prec:230 dec in
    let m' = Bigfloat.of_expansion ~prec:230 (Multifloat.Mf4.components m) in
    let diff = Bigfloat.to_float (Bigfloat.abs (Bigfloat.sub b m')) in
    if diff > Float.abs (Bigfloat.to_float b) *. Float.ldexp 1.0 (-210) then
      Alcotest.failf "constant %s off by %h" name diff
  in
  check "pi" Multifloat.Elementary.F4.pi
    "3.14159265358979323846264338327950288419716939937510582097494459230781640628620899862803482534211706798";
  check "e" Multifloat.Elementary.F4.e
    "2.71828182845904523536028747135266249775724709369995957496696762772407663035354759457138217852516642743";
  check "ln2" Multifloat.Elementary.F4.ln2
    "0.69314718055994530941723212145817656807550013436025525412068000949339362196969471560586332699641868754";
  check "sqrt2" Multifloat.Elementary.F4.sqrt2
    "1.41421356237309504880168872420969807856967187537694807317667973799073247846210703885038753432764157274"

(* Independent cross-check: Multifloat.Elementary (expansion arithmetic,
   Newton/Taylor with FPAN ops) vs Bigfloat's transcendentals (software
   FPU, series with guard bits).  The implementations share no code, so
   agreement to ~200 bits validates both. *)
let test_vs_bigfloat () =
  let module M = Multifloat.Mf4 in
  let module F = Multifloat.Elementary.F4 in
  let prec = 230 in
  let to_big m = Bigfloat.of_expansion ~prec (M.components m) in
  let close name got expect =
    let diff = Bigfloat.to_float (Bigfloat.abs (Bigfloat.sub got expect)) in
    let scale = Float.max 1e-300 (Float.abs (Bigfloat.to_float expect)) in
    if diff > scale *. Float.ldexp 1.0 (-195) then
      Alcotest.failf "%s: disagreement %h" name diff
  in
  close "pi" (to_big F.pi) (Bigfloat.pi ~prec);
  close "ln2" (to_big F.ln2) (Bigfloat.ln2 ~prec);
  let rng = Random.State.make [| 0xcc; 3 |] in
  for _ = 1 to 25 do
    let xf = Random.State.float rng 6.0 -. 3.0 in
    let xm = M.of_float xf in
    let xb = Bigfloat.of_float ~prec xf in
    close "exp" (to_big (F.exp xm)) (Bigfloat.exp xb);
    close "sin" (to_big (F.sin xm)) (Bigfloat.sin xb);
    close "cos" (to_big (F.cos xm)) (Bigfloat.cos xb);
    close "atan" (to_big (F.atan xm)) (Bigfloat.atan xb);
    let xpos = Float.abs xf +. 0.1 in
    close "log" (to_big (F.log (M.of_float xpos))) (Bigfloat.log (Bigfloat.of_float ~prec xpos))
  done

let test_bigfloat_trig_identities () =
  let prec = 180 in
  let rng = Random.State.make [| 0xdd; 4 |] in
  for _ = 1 to 25 do
    let x = Bigfloat.of_float ~prec (Random.State.float rng 20.0 -. 10.0) in
    let s, c = Bigfloat.sin_cos x in
    let one = Bigfloat.of_int ~prec 1 in
    let pyth = Bigfloat.add (Bigfloat.mul s s) (Bigfloat.mul c c) in
    let diff = Float.abs (Bigfloat.to_float (Bigfloat.sub pyth one)) in
    if diff > Float.ldexp 1.0 (-165) then Alcotest.failf "bigfloat sin^2+cos^2: %h" diff
  done;
  (* exp/log roundtrip *)
  for _ = 1 to 15 do
    let x = Bigfloat.of_float ~prec (Random.State.float rng 8.0 -. 4.0) in
    let back = Bigfloat.log (Bigfloat.exp x) in
    let diff = Float.abs (Bigfloat.to_float (Bigfloat.sub back x)) in
    if diff > Float.ldexp 1.0 (-160) then Alcotest.failf "bigfloat log(exp x): %h" diff
  done

let () =
  Alcotest.run "elementary"
    [ C2.suite "mf2";
      C3.suite "mf3";
      C4.suite "mf4";
      ( "cross",
        [ Alcotest.test_case "2 vs 4 terms" `Quick test_cross_precision;
          Alcotest.test_case "constants vs bigfloat" `Quick test_constants_vs_bigfloat;
          Alcotest.test_case "vs bigfloat transcendentals" `Quick test_vs_bigfloat;
          Alcotest.test_case "bigfloat trig identities" `Quick test_bigfloat_trig_identities ] ) ]
