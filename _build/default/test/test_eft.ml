(* Unit and property tests for the error-free transformations. *)
let ( ==> ) = QCheck.( ==> )

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.0))

(* A float generator that covers the adversarial input classes of the
   paper: mixed signs, wildly different magnitudes, ulp-adjacent values,
   powers of two, and exact zeros. *)
let gen_tricky_float =
  let open QCheck.Gen in
  let scaled =
    let* m = float_range (-2.0) 2.0 in
    let* e = int_range (-60) 60 in
    return (Float.ldexp m e)
  in
  frequency
    [ (4, scaled);
      (2, map2 (fun m e -> Float.ldexp (float_of_int m) e) (int_range (-1000) 1000) (int_range (-40) 40));
      (1, map (fun e -> Float.ldexp 1.0 e) (int_range (-60) 60));
      (1, return 0.0);
      (1, return 1.0);
      (1, return (-1.0)) ]

let arb_tricky = QCheck.make ~print:(Printf.sprintf "%h") gen_tricky_float

(* Exactness of an EFT is checked against Exact: s + e must equal the
   exact real sum/product of the operands. *)
let exact_sum_is x y s e =
  Exact.is_exactly (Exact.sum_floats [| x; y |]) s || Exact.sign (Exact.sum_floats [| x; y; -.s; -.e |]) = 0

let test_two_sum_simple () =
  let s, e = Eft.two_sum 1.0 Float.epsilon in
  check_float "sum" (1.0 +. Float.epsilon) s;
  check_float "no error" 0.0 e;
  let s, e = Eft.two_sum 1.0 (Float.epsilon /. 4.0) in
  check_float "rounded sum" 1.0 s;
  check_float "error recovered" (Float.epsilon /. 4.0) e

let test_two_sum_cancellation () =
  let big = Float.ldexp 1.0 60 in
  let s, e = Eft.two_sum big 1.0 in
  check_float "rounded" big s;
  check_float "error" 1.0 e;
  let s, e = Eft.two_sum big (-.big) in
  check_float "cancel sum" 0.0 s;
  check_float "cancel err" 0.0 e

let test_fast_two_sum_precondition () =
  (* Valid when exponent x >= exponent y; compare against two_sum. *)
  let cases = [ (1.0, 0.25); (-8.0, 3.0); (1e300, 1.0); (2.0, -1.999); (0.0, 0.0); (5.0, 0.0) ] in
  List.iter
    (fun (x, y) ->
      let s1, e1 = Eft.two_sum x y in
      let s2, e2 = Eft.fast_two_sum x y in
      check_float "s agree" s1 s2;
      check_float "e agree" e1 e2)
    cases

let test_two_prod_simple () =
  let p, e = Eft.two_prod (1.0 +. Float.epsilon) (1.0 +. Float.epsilon) in
  (* (1+u)^2 = 1 + 2u + u^2; u^2 = 2^-104 is the exact rounding error. *)
  check_float "product" (1.0 +. (2.0 *. Float.epsilon)) p;
  check_float "error" (Float.epsilon *. Float.epsilon) e

let test_split () =
  let check_one x =
    let hi, lo = Eft.split x in
    check_float "hi+lo" x (hi +. lo);
    (* hi fits in 26 bits: multiplying by itself is exact. *)
    check_bool "hi exact square" true (Float.is_finite (hi *. hi))
  in
  List.iter check_one [ 1.0; Float.pi; 1e10; -3.25e-7; 123456789.123 ]

let test_exponent_ulp () =
  Alcotest.(check int) "exp 1.0" 0 (Eft.exponent 1.0);
  Alcotest.(check int) "exp 0.5" (-1) (Eft.exponent 0.5);
  Alcotest.(check int) "exp -7" 2 (Eft.exponent (-7.0));
  check_float "ulp 1.0" Float.epsilon (Eft.ulp 1.0);
  check_float "ulp 2^52" 1.0 (Eft.ulp (Float.ldexp 1.0 52));
  check_float "ulp 0" 0.0 (Eft.ulp 0.0)

let test_nonoverlapping () =
  check_bool "1, eps/2" true (Eft.is_nonoverlapping 1.0 (Float.epsilon /. 2.0));
  check_bool "1, eps" false (Eft.is_nonoverlapping 1.0 Float.epsilon);
  check_bool "x, 0" true (Eft.is_nonoverlapping 1.0 0.0);
  check_bool "0, x" false (Eft.is_nonoverlapping 0.0 1.0);
  check_bool "seq" true (Eft.is_nonoverlapping_seq [| 1.0; Float.epsilon /. 2.0; 0.0 |])

let prop_two_sum_exact =
  QCheck.Test.make ~count:20000 ~name:"two_sum is exact" (QCheck.pair arb_tricky arb_tricky) (fun (x, y) ->
      let s, e = Eft.two_sum x y in
      Float.is_finite s ==> exact_sum_is x y s e)
  |> QCheck_alcotest.to_alcotest

let prop_two_sum_rounded =
  QCheck.Test.make ~count:20000 ~name:"two_sum s = fl(x+y)" (QCheck.pair arb_tricky arb_tricky) (fun (x, y) ->
      let s, _ = Eft.two_sum x y in
      s = x +. y)
  |> QCheck_alcotest.to_alcotest

let prop_two_sum_nonoverlap =
  QCheck.Test.make ~count:20000 ~name:"two_sum output nonoverlapping" (QCheck.pair arb_tricky arb_tricky)
    (fun (x, y) ->
      let s, e = Eft.two_sum x y in
      (s <> 0.0 && Float.is_finite s) ==> Eft.is_nonoverlapping s e)
  |> QCheck_alcotest.to_alcotest

let prop_two_prod_exact =
  QCheck.Test.make ~count:20000 ~name:"two_prod is exact" (QCheck.pair arb_tricky arb_tricky) (fun (x, y) ->
      let p, e = Eft.two_prod x y in
      QCheck.assume (Float.is_finite p && Float.abs (x *. y) > Float.ldexp 1.0 (-900));
      Exact.sign (Exact.grow (Exact.grow (Exact.mul (Exact.of_float x) (Exact.of_float y)) (-.p)) (-.e)) = 0)
  |> QCheck_alcotest.to_alcotest

let prop_two_prod_matches_dekker =
  QCheck.Test.make ~count:20000 ~name:"two_prod = two_prod_dekker" (QCheck.pair arb_tricky arb_tricky)
    (fun (x, y) ->
      let p1, e1 = Eft.two_prod x y in
      QCheck.assume (Float.is_finite p1 && Float.abs (x *. y) > Float.ldexp 1.0 (-900));
      let p2, e2 = Eft.two_prod_dekker x y in
      p1 = p2 && e1 = e2)
  |> QCheck_alcotest.to_alcotest

let prop_fast_two_sum_ordered =
  QCheck.Test.make ~count:20000 ~name:"fast_two_sum under precondition" (QCheck.pair arb_tricky arb_tricky)
    (fun (x, y) ->
      (* Order the operands so the precondition holds. *)
      let x, y = if Eft.exponent x >= Eft.exponent y then (x, y) else (y, x) in
      let s1, e1 = Eft.two_sum x y in
      let s2, e2 = Eft.fast_two_sum x y in
      Float.is_finite s1 ==> (s1 = s2 && e1 = e2))
  |> QCheck_alcotest.to_alcotest

let prop_split_exact =
  QCheck.Test.make ~count:20000 ~name:"split: hi + lo = x, 26-bit halves" arb_tricky (fun x ->
      QCheck.assume (Float.abs x < Float.ldexp 1.0 990);
      let hi, lo = Eft.split x in
      hi +. lo = x && Float.abs lo <= Float.ldexp 1.0 (Eft.exponent x - 26))
  |> QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "eft"
    [ ( "unit",
        [ Alcotest.test_case "two_sum simple" `Quick test_two_sum_simple;
          Alcotest.test_case "two_sum cancellation" `Quick test_two_sum_cancellation;
          Alcotest.test_case "fast_two_sum precondition" `Quick test_fast_two_sum_precondition;
          Alcotest.test_case "two_prod simple" `Quick test_two_prod_simple;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "exponent/ulp" `Quick test_exponent_ulp;
          Alcotest.test_case "nonoverlapping" `Quick test_nonoverlapping ] );
      ( "property",
        [ prop_two_sum_exact;
          prop_two_sum_rounded;
          prop_two_sum_nonoverlap;
          prop_two_prod_exact;
          prop_two_prod_matches_dekker;
          prop_fast_two_sum_ordered;
          prop_split_exact ] ) ]
