(* Tests for the software-FPU substrate.

   The sharpest check: at prec = 53, every Bigfloat operation must agree
   bit-for-bit with the hardware's IEEE double arithmetic, since both
   claim round-to-nearest-even at the same precision. *)

module B = Bigfloat
module Bignat = Bigfloat.Bignat

let rng = Random.State.make [| 0xb1f; 17 |]

let random_double () =
  let m = Random.State.float rng 2.0 -. 1.0 in
  let e = Random.State.int rng 120 - 60 in
  match Random.State.int rng 10 with
  | 0 -> 0.0
  | 1 -> Float.ldexp 1.0 e
  | 2 -> Float.of_int (Random.State.int rng 1000 - 500)
  | _ -> Float.ldexp m e

let check_float = Alcotest.(check (float 0.0))

let bits f = Int64.bits_of_float f

let test_roundtrip_float () =
  for _ = 1 to 5000 do
    let f = random_double () in
    let b = B.of_float ~prec:53 f in
    if bits (B.to_float b) <> bits f then Alcotest.failf "roundtrip %h -> %h" f (B.to_float b)
  done

let binop_matches name bop fop =
  for _ = 1 to 5000 do
    let x = random_double () and y = random_double () in
    let bx = B.of_float ~prec:53 x and by = B.of_float ~prec:53 y in
    let got = B.to_float (bop bx by) in
    let expected = fop x y in
    (* Like the paper's algorithms (Section 4.4), Bigfloat does not
       track the sign of zero, so -0.0 and +0.0 compare equal here. *)
    let expected = if expected = 0.0 then 0.0 else expected in
    if Float.is_finite expected && bits got <> bits expected then
      Alcotest.failf "%s %h %h: got %h, expected %h" name x y got expected
  done

let test_add_matches_double () = binop_matches "add" B.add ( +. )
let test_sub_matches_double () = binop_matches "sub" B.sub ( -. )
let test_mul_matches_double () = binop_matches "mul" B.mul ( *. )
let test_div_matches_double () = binop_matches "div" B.div ( /. )

let test_sqrt_matches_double () =
  for _ = 1 to 5000 do
    let x = Float.abs (random_double ()) in
    let got = B.to_float (B.sqrt (B.of_float ~prec:53 x)) in
    let expected = Float.sqrt x in
    if bits got <> bits expected then Alcotest.failf "sqrt %h: got %h, expected %h" x got expected
  done

let test_special_values () =
  let p = 100 in
  let nan = B.of_float ~prec:p Float.nan in
  let inf = B.of_float ~prec:p Float.infinity in
  let zero = B.make_zero ~prec:p in
  let one = B.of_int ~prec:p 1 in
  Alcotest.(check bool) "nan is nan" true (B.is_nan nan);
  Alcotest.(check bool) "nan + 1" true (B.is_nan (B.add nan one));
  Alcotest.(check bool) "inf + 1 = inf" true (B.is_inf (B.add inf one));
  Alcotest.(check bool) "inf - inf = nan" true (B.is_nan (B.sub inf inf));
  Alcotest.(check bool) "inf * 0 = nan" true (B.is_nan (B.mul inf zero));
  Alcotest.(check bool) "1/0 = inf" true (B.is_inf (B.div one zero));
  Alcotest.(check bool) "0/0 = nan" true (B.is_nan (B.div zero zero));
  Alcotest.(check bool) "sqrt(-1) = nan" true (B.is_nan (B.sqrt (B.of_int ~prec:p (-1))));
  check_float "0 + 0" 0.0 (B.to_float (B.add zero zero))

let test_high_precision_identity () =
  (* (1 + 2^-200) - 1 = 2^-200 at prec 300; at prec 53 it vanishes. *)
  let p = 300 in
  let one = B.of_int ~prec:p 1 in
  let tiny = B.of_float ~prec:p (Float.ldexp 1.0 (-200)) in
  let d = B.sub (B.add one tiny) one in
  Alcotest.(check bool) "captures 2^-200" true (B.equal d tiny);
  let low = B.round_to ~prec:53 (B.add one tiny) in
  Alcotest.(check bool) "53-bit drops it" true (B.equal low (B.round_to ~prec:53 one))

let test_sqrt2_squared () =
  let p = 250 in
  let two = B.of_int ~prec:p 2 in
  let s = B.sqrt two in
  let err = B.sub (B.mul s s) two in
  (* |s^2 - 2| <= 2 ulp at 250 bits. *)
  Alcotest.(check bool) "sqrt2^2 ~ 2" true (Float.abs (B.to_float err) < Float.ldexp 1.0 (-245))

let test_compare () =
  for _ = 1 to 3000 do
    let x = random_double () and y = random_double () in
    let c = B.compare (B.of_float ~prec:80 x) (B.of_float ~prec:80 y) in
    if c <> Float.compare x y then Alcotest.failf "compare %h %h: %d" x y c
  done

let test_of_string_exact () =
  List.iter
    (fun (s, v) ->
      let b = B.of_string ~prec:100 s in
      check_float s v (B.to_float b))
    [ ("1", 1.0); ("-2.5", -2.5); ("0.125", 0.125); ("1e10", 1e10); ("1024e-2", 10.24);
      ("0.1", 0.1); ("3.14159", 3.14159); ("-0.0001220703125", -0.0001220703125) ]

let test_of_string_correctly_rounded () =
  (* 0.1 at 53 bits must be the double nearest 0.1. *)
  let b = B.of_string ~prec:53 "0.1" in
  if bits (B.to_float b) <> bits 0.1 then Alcotest.fail "0.1 not correctly rounded";
  let b = B.of_string ~prec:53 "1.0000000000000000000000000000001" in
  if bits (B.to_float b) <> bits 1.0 then Alcotest.fail "sticky parse failed"

let test_string_roundtrip () =
  for _ = 1 to 500 do
    let x = random_double () in
    if x <> 0.0 then begin
      let b = B.of_float ~prec:120 x in
      let s = B.to_string b in
      let b2 = B.of_string ~prec:120 s in
      let diff = B.to_float (B.abs (B.sub b b2)) in
      let budget = Float.abs x *. Float.ldexp 1.0 (-100) in
      if diff > budget then Alcotest.failf "roundtrip %h via %s: diff %h" x s diff
    end
  done

let test_to_string_simple () =
  let p = 100 in
  Alcotest.(check string) "1" "1.0" (B.to_string ~digits:1 (B.of_int ~prec:p 1));
  Alcotest.(check string) "-2.5" "-2.5" (B.to_string ~digits:2 (B.of_float ~prec:p (-2.5)));
  Alcotest.(check string) "1e10" "1.0e+10" (B.to_string ~digits:2 (B.of_string ~prec:p "1e10"));
  Alcotest.(check string) "nan" "nan" (B.to_string (B.of_float ~prec:p Float.nan));
  Alcotest.(check string) "zero" "0.0" (B.to_string (B.make_zero ~prec:p))

let test_expansion_conversions () =
  for _ = 1 to 1000 do
    let xs = Fpan.Gen.expansion rng ~n:4 ~e0_min:(-40) ~e0_max:40 () in
    let b = B.of_expansion ~prec:300 xs in
    (* 4-term expansions carry at most 215 bits: 300 is exact. *)
    let back = B.to_expansion ~n:4 b in
    let diff = B.sub b (B.of_expansion ~prec:300 back) in
    if not (B.is_zero diff) then
      Alcotest.failf "expansion roundtrip: residual %h" (B.to_float diff)
  done

let test_to_expansion_nonoverlapping () =
  for _ = 1 to 500 do
    let x = Float.abs (random_double ()) +. 1.0 in
    let b = B.sqrt (B.of_float ~prec:300 x) in
    let e = B.to_expansion ~n:4 b in
    if not (Eft.is_nonoverlapping_seq e) then Alcotest.fail "to_expansion overlaps"
  done

let test_mixed_precision () =
  (* Binary ops round to the left operand's precision. *)
  let a = B.of_int ~prec:53 1 in
  let b = B.of_float ~prec:200 (Float.ldexp 1.0 (-100)) in
  let s = B.add a b in
  Alcotest.(check int) "prec follows left" 53 (B.prec s);
  Alcotest.(check bool) "rounded away" true (B.equal s (B.of_int ~prec:53 1))

let test_fma_single_rounding () =
  (* fma must beat mul-then-add when the product's low bits matter. *)
  for _ = 1 to 3000 do
    let x = random_double () and y = random_double () and z = random_double () in
    let p = 53 in
    let bx = B.of_float ~prec:p x and by = B.of_float ~prec:p y and bz = B.of_float ~prec:p z in
    let got = B.to_float (B.fma bx by bz) in
    let expected = Float.fma x y z in
    let expected = if expected = 0.0 then 0.0 else expected in
    if Float.is_finite expected && bits got <> bits expected then
      Alcotest.failf "fma %h %h %h: got %h expected %h" x y z got expected
  done

(* Directed rounding. *)
let test_rounding_modes_bracket () =
  (* down <= nearest <= up, and |toward_zero| <= |nearest|. *)
  for _ = 1 to 2000 do
    let x = random_double () and y = random_double () in
    let a = B.of_float ~prec:60 x and b = B.of_float ~prec:60 y in
    List.iter
      (fun (op, op_m) ->
        let near = op a b in
        if not (B.is_nan near) then begin
          let up = op_m B.Upward a b in
          let down = op_m B.Downward a b in
          let tz = op_m B.Toward_zero a b in
          if B.compare down near > 0 then Alcotest.fail "down > nearest";
          if B.compare near up > 0 then Alcotest.fail "nearest > up";
          if B.compare (B.abs tz) (B.abs near) > 0 then Alcotest.fail "|tz| > |nearest|";
          (* up - down is 0 (exact) or one ulp *)
          if B.compare down up > 0 then Alcotest.fail "down > up"
        end)
      [ (B.add, B.add_mode); (B.sub, B.sub_mode); (B.mul, B.mul_mode) ]
  done

let test_rounding_modes_exact_values () =
  (* 1/3 at 8 bits: down = 85/256, up = 86/256 (0.33203125 / 0.3359375). *)
  let one = B.of_int ~prec:8 1 in
  let three = B.of_int ~prec:8 3 in
  let down = B.div_mode B.Downward one three in
  let up = B.div_mode B.Upward one three in
  Alcotest.(check (float 0.0)) "1/3 down" 0.33203125 (B.to_float down);
  Alcotest.(check (float 0.0)) "1/3 up" 0.333984375 (B.to_float up);
  (* exact operations are unaffected by the mode *)
  let q = B.div_mode B.Upward (B.of_int ~prec:60 6) (B.of_int ~prec:60 3) in
  Alcotest.(check (float 0.0)) "6/3 exact" 2.0 (B.to_float q);
  let s = B.sqrt_mode B.Downward (B.of_int ~prec:60 4) in
  Alcotest.(check (float 0.0)) "sqrt 4 exact" 2.0 (B.to_float s)

(* Bignat-level tests. *)
let test_bignat_basics () =
  let open Bignat in
  Alcotest.(check bool) "zero" true (is_zero zero);
  Alcotest.(check string) "12345" "12345" (to_string (of_int 12345));
  let a = of_int 999999999999 in
  let b = of_int 1 in
  Alcotest.(check string) "add" "1000000000000" (to_string (add a b));
  Alcotest.(check string) "sub" "999999999998" (to_string (sub a b));
  Alcotest.(check string) "mul" "999999999999" (to_string (mul a b));
  Alcotest.(check int) "bit_length 1" 1 (bit_length one);
  Alcotest.(check int) "bit_length 2^40" 41 (bit_length (shift_left one 40))

let test_bignat_divmod () =
  for _ = 1 to 2000 do
    let a = Random.State.full_int rng (1 lsl 60) in
    let b = 1 + Random.State.full_int rng (1 lsl 30) in
    let q, r = Bignat.divmod (Bignat.of_int a) (Bignat.of_int b) in
    let qi = match Bignat.to_int_opt q with Some v -> v | None -> -1 in
    let ri = match Bignat.to_int_opt r with Some v -> v | None -> -1 in
    if qi <> a / b || ri <> a mod b then Alcotest.failf "divmod %d %d -> %d %d" a b qi ri
  done

let test_bignat_isqrt () =
  for _ = 1 to 2000 do
    let a = Random.State.full_int rng (1 lsl 60) in
    let s, r = Bignat.isqrt_rem (Bignat.of_int a) in
    let si = match Bignat.to_int_opt s with Some v -> v | None -> -1 in
    let ri = match Bignat.to_int_opt r with Some v -> v | None -> -1 in
    if (si * si) + ri <> a || si * si > a || (si + 1) * (si + 1) <= a then
      Alcotest.failf "isqrt %d -> %d rem %d" a si ri
  done;
  let s, r = Bignat.isqrt_rem Bignat.zero in
  Alcotest.(check bool) "isqrt 0" true (Bignat.is_zero s && Bignat.is_zero r)

let test_bignat_shifts () =
  for _ = 1 to 2000 do
    let a = Random.State.full_int rng (1 lsl 50) in
    let k = Random.State.int rng 80 in
    let l = Bignat.shift_left (Bignat.of_int a) k in
    let back = Bignat.shift_right l k in
    if Bignat.compare back (Bignat.of_int a) <> 0 then Alcotest.fail "shift roundtrip";
    if Bignat.bit_length l <> (if a = 0 then 0 else Bignat.bit_length (Bignat.of_int a) + k) then
      Alcotest.fail "shift bit_length"
  done

let test_bignat_pow5 () =
  Alcotest.(check string) "5^0" "1" (Bignat.to_string (Bignat.pow5 0));
  Alcotest.(check string) "5^10" "9765625" (Bignat.to_string (Bignat.pow5 10));
  Alcotest.(check string) "5^30" "931322574615478515625" (Bignat.to_string (Bignat.pow5 30))

let test_bignat_decimal () =
  for _ = 1 to 500 do
    let a = Random.State.full_int rng max_int in
    let s = Bignat.to_string (Bignat.of_int a) in
    if s <> string_of_int a then Alcotest.failf "to_string %d = %s" a s;
    if Bignat.compare (Bignat.of_decimal_string s) (Bignat.of_int a) <> 0 then
      Alcotest.fail "decimal roundtrip"
  done

let test_bignat_sticky () =
  let x = Bignat.of_int 0b101000 in
  Alcotest.(check bool) "below 3" false (Bignat.any_bit_below x 3);
  Alcotest.(check bool) "below 4" true (Bignat.any_bit_below x 4);
  Alcotest.(check bool) "test_bit 3" true (Bignat.test_bit x 3);
  Alcotest.(check bool) "test_bit 4" false (Bignat.test_bit x 4)

let () =
  Alcotest.run "bigfloat"
    [ ( "vs-double",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip_float;
          Alcotest.test_case "add" `Quick test_add_matches_double;
          Alcotest.test_case "sub" `Quick test_sub_matches_double;
          Alcotest.test_case "mul" `Quick test_mul_matches_double;
          Alcotest.test_case "div" `Quick test_div_matches_double;
          Alcotest.test_case "sqrt" `Quick test_sqrt_matches_double ] );
      ( "semantics",
        [ Alcotest.test_case "special values" `Quick test_special_values;
          Alcotest.test_case "high precision" `Quick test_high_precision_identity;
          Alcotest.test_case "sqrt2^2" `Quick test_sqrt2_squared;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "mixed precision" `Quick test_mixed_precision ] );
      ("fma", [ Alcotest.test_case "matches hardware fma" `Quick test_fma_single_rounding ]);
      ( "rounding-modes",
        [ Alcotest.test_case "bracketing" `Quick test_rounding_modes_bracket;
          Alcotest.test_case "exact values" `Quick test_rounding_modes_exact_values ] );
      ( "strings",
        [ Alcotest.test_case "of_string exact" `Quick test_of_string_exact;
          Alcotest.test_case "correctly rounded" `Quick test_of_string_correctly_rounded;
          Alcotest.test_case "roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "to_string simple" `Quick test_to_string_simple ] );
      ( "expansions",
        [ Alcotest.test_case "roundtrip" `Quick test_expansion_conversions;
          Alcotest.test_case "nonoverlapping" `Quick test_to_expansion_nonoverlapping ] );
      ( "bignat",
        [ Alcotest.test_case "basics" `Quick test_bignat_basics;
          Alcotest.test_case "divmod" `Quick test_bignat_divmod;
          Alcotest.test_case "isqrt" `Quick test_bignat_isqrt;
          Alcotest.test_case "shifts" `Quick test_bignat_shifts;
          Alcotest.test_case "pow5" `Quick test_bignat_pow5;
          Alcotest.test_case "decimal" `Quick test_bignat_decimal;
          Alcotest.test_case "sticky" `Quick test_bignat_sticky ] ) ]
