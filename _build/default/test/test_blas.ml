(* Tests for the BLAS kernels across every Numeric instance.

   Each arithmetic runs the same generic kernels; results are checked
   against an exact expansion-arithmetic reference at the instance's
   nominal precision. *)

let rng = Random.State.make [| 0xb1a5; 7 |]

let random_floats n = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0)

(* Exact references over float inputs. *)
let exact_dot x y =
  let acc = ref Exact.zero in
  Array.iteri (fun i xi -> acc := Exact.sum !acc (Exact.mul (Exact.of_float xi) (Exact.of_float y.(i)))) x;
  !acc

let close_to ~bits got exact =
  let diff = Exact.grow exact (-.got) in
  let d = Float.abs (Exact.approx (Exact.compress diff)) in
  let r = Float.abs (Exact.approx (Exact.compress exact)) in
  d = 0.0 || (r > 0.0 && Float.log2 d -. Float.log2 r <= Float.of_int (-bits))

module Check (N : sig
  include Blas.Numeric.S

  val budget : int
end) =
struct
  module K = Blas.Kernels.Make (N)

  let budget = N.budget

  let run () =
    let n = 40 in
    let xf = random_floats n and yf = random_floats n in
    let alpha = 0.75 in
    (* DOT *)
    let x = K.vec_of_floats xf and y = K.vec_of_floats yf in
    let d = N.to_float (K.dot ~x ~y) in
    if not (close_to ~bits:budget d (exact_dot xf yf)) then
      Alcotest.failf "%s dot off: %h" N.name d;
    (* AXPY: y <- alpha x + y *)
    let y2 = K.vec_of_floats yf in
    K.axpy ~alpha:(N.of_float alpha) ~x ~y:y2;
    Array.iteri
      (fun i v ->
        let expect = Exact.grow (Exact.scale (Exact.of_float xf.(i)) alpha) yf.(i) in
        if not (close_to ~bits:budget (N.to_float v) expect) then
          Alcotest.failf "%s axpy at %d" N.name i)
      y2;
    (* GEMV vs DOT rows *)
    let m = 7 and nn = 9 in
    let af = random_floats (m * nn) and xf2 = random_floats nn in
    let a = K.vec_of_floats af and x2 = K.vec_of_floats xf2 in
    let yv = Array.make m N.zero in
    K.gemv ~m ~n:nn ~a ~x:x2 ~y:yv;
    for i = 0 to m - 1 do
      let row = Array.sub af (i * nn) nn in
      if not (close_to ~bits:budget (N.to_float yv.(i)) (exact_dot row xf2)) then
        Alcotest.failf "%s gemv row %d" N.name i
    done;
    (* GEMM vs triple loop in exact arithmetic *)
    let m, k, nn = (4, 5, 3) in
    let af = random_floats (m * k) and bf = random_floats (k * nn) in
    let a = K.vec_of_floats af and b = K.vec_of_floats bf in
    let c = Array.make (m * nn) N.zero in
    K.gemm ~m ~n:nn ~k ~a ~b ~c;
    for i = 0 to m - 1 do
      for j = 0 to nn - 1 do
        let acc = ref Exact.zero in
        for p = 0 to k - 1 do
          acc :=
            Exact.sum !acc
              (Exact.mul (Exact.of_float af.((i * k) + p)) (Exact.of_float bf.((p * nn) + j)))
        done;
        if not (close_to ~bits:budget (N.to_float c.((i * nn) + j)) !acc) then
          Alcotest.failf "%s gemm %d %d" N.name i j
      done
    done

  let run_pool () =
    Parallel.Pool.with_pool ~domains:3 (fun pool ->
        let n = 64 in
        let xf = random_floats n and yf = random_floats n in
        let x = K.vec_of_floats xf and y = K.vec_of_floats yf in
        (* Pool dot must equal sequential dot bit-for-bit?  No: the
           chunked combination order differs from the sequential fold,
           so only require agreement to precision. *)
        let d1 = N.to_float (K.dot ~x ~y) in
        let d2 = N.to_float (K.dot_pool pool ~x ~y) in
        if Float.abs (d1 -. d2) > Float.abs d1 *. Float.ldexp 1.0 (-40) then
          Alcotest.failf "%s pool dot differs" N.name;
        (* axpy/gemv/gemm write distinct slots: bitwise equal. *)
        let y1 = K.vec_of_floats yf and y2 = K.vec_of_floats yf in
        let alpha = N.of_float 1.25 in
        K.axpy ~alpha ~x ~y:y1;
        K.axpy_pool pool ~alpha ~x ~y:y2;
        Array.iteri
          (fun i v ->
            if N.to_float v <> N.to_float y2.(i) then Alcotest.failf "%s pool axpy %d" N.name i)
          y1;
        let m = 6 and nn = 8 in
        let af = random_floats (m * nn) in
        let a = K.vec_of_floats af in
        let xv = K.vec_of_floats (random_floats nn) in
        let ya = Array.make m N.zero and yb = Array.make m N.zero in
        K.gemv ~m ~n:nn ~a ~x:xv ~y:ya;
        K.gemv_pool pool ~m ~n:nn ~a ~x:xv ~y:yb;
        for i = 0 to m - 1 do
          if N.to_float ya.(i) <> N.to_float yb.(i) then Alcotest.failf "%s pool gemv %d" N.name i
        done;
        let k = 5 in
        let af = random_floats (m * k) and bf = random_floats (k * nn) in
        let a = K.vec_of_floats af and b = K.vec_of_floats bf in
        let c1 = Array.make (m * nn) N.zero and c2 = Array.make (m * nn) N.zero in
        K.gemm ~m ~n:nn ~k ~a ~b ~c:c1;
        K.gemm_pool pool ~m ~n:nn ~k ~a ~b ~c:c2;
        for i = 0 to (m * nn) - 1 do
          if N.to_float c1.(i) <> N.to_float c2.(i) then Alcotest.failf "%s pool gemm %d" N.name i
        done)
end

let instance_case (name, run) = Alcotest.test_case name `Quick run

let seq_cases =
  let mk (type a) name budget (module N : Blas.Numeric.S with type t = a) =
    let module C = Check (struct
      include N

      let budget = budget
    end) in
    (name, C.run)
  in
  (* Budgets reflect what N.to_float can resolve: the full value for
     double and the software FPU, the leading (53-bit) component for
     expansion types, the leading 24-bit component for the binary32 GPU
     types. *)
  [ mk "double" 42 (module Blas.Instances.Double);
    mk "mf2" 48 (module Blas.Instances.Mf2);
    mk "mf3" 48 (module Blas.Instances.Mf3);
    mk "mf4" 48 (module Blas.Instances.Mf4);
    mk "qd-dd" 48 (module Blas.Instances.Qd_dd);
    mk "qd-qd" 48 (module Blas.Instances.Qd_qd);
    mk "campary2" 48 (module Blas.Instances.Campary2);
    mk "campary3" 48 (module Blas.Instances.Campary3);
    mk "campary4" 48 (module Blas.Instances.Campary4);
    mk "fpu103" 48 (module Blas.Instances.Fpu103);
    mk "fpu208" 48 (module Blas.Instances.Fpu208);
    mk "arb103" 48 (module Blas.Instances.Arb103);
    mk "gpu2" 18 (module Blas.Instances.Gpu2);
    mk "gpu4" 18 (module Blas.Instances.Gpu4) ]

let pool_cases =
  let mk (type a) name (module N : Blas.Numeric.S with type t = a) =
    let module C = Check (struct
      include N

      let budget = 40
    end) in
    (name, C.run_pool)
  in
  [ mk "double-pool" (module Blas.Instances.Double);
    mk "mf2-pool" (module Blas.Instances.Mf2);
    mk "mf4-pool" (module Blas.Instances.Mf4);
    mk "fpu103-pool" (module Blas.Instances.Fpu103) ]

let () =
  Alcotest.run "blas"
    [ ("sequential", List.map instance_case seq_cases);
      ("pool", List.map instance_case pool_cases) ]
