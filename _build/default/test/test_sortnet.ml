(* Tests for the sorting-network module (the FPAN structural cousins of
   paper Section 6). *)

let rng = Random.State.make [| 0x5027; 13 |]

let test_01_principle () =
  (* Both constructions sort all boolean inputs at several sizes; a
     deliberately broken network must fail. *)
  List.iter
    (fun n ->
      if not (Fpan.Sortnet.verify_01 (Fpan.Sortnet.batcher n)) then
        Alcotest.failf "batcher %d fails 0-1" n;
      if not (Fpan.Sortnet.verify_01 (Fpan.Sortnet.transposition n)) then
        Alcotest.failf "transposition %d fails 0-1" n)
    [ 1; 2; 3; 4; 5; 7; 8; 12; 16 ];
  let broken = { Fpan.Sortnet.wires = 4; comparators = [| (0, 1); (2, 3) |] } in
  Alcotest.(check bool) "broken rejected" false (Fpan.Sortnet.verify_01 broken)

let test_sorts_random () =
  for _ = 1 to 500 do
    let n = 1 + Random.State.int rng 20 in
    let net = Fpan.Sortnet.batcher n in
    let v = Array.init n (fun _ -> Random.State.int rng 1000) in
    let expect = Array.copy v in
    Array.sort Stdlib.compare expect;
    Fpan.Sortnet.sort net ~cmp:Stdlib.compare v;
    if v <> expect then Alcotest.fail "batcher mis-sorts"
  done

let test_magnitude_sort () =
  for _ = 1 to 500 do
    let n = 2 + Random.State.int rng 14 in
    let net = Fpan.Sortnet.batcher n in
    let v = Array.init n (fun _ -> Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 40 - 20)) in
    Fpan.Sortnet.sort_floats_by_magnitude net v;
    for i = 0 to n - 2 do
      if Float.abs v.(i) < Float.abs v.(i + 1) then Alcotest.fail "not decreasing |.|"
    done
  done

let test_size_depth () =
  (* Known values: Batcher at n = 4 has 5 comparators, depth 3; the
     transposition sort at n has n(n-1)/2 comparators, depth n. *)
  let b4 = Fpan.Sortnet.batcher 4 in
  Alcotest.(check int) "batcher4 size" 5 (Fpan.Sortnet.size b4);
  Alcotest.(check int) "batcher4 depth" 3 (Fpan.Sortnet.depth b4);
  let t6 = Fpan.Sortnet.transposition 6 in
  Alcotest.(check int) "transposition6 size" 15 (Fpan.Sortnet.size t6);
  Alcotest.(check int) "transposition6 depth" 6 (Fpan.Sortnet.depth t6);
  (* Batcher's asymptotic advantage is visible already at n = 16. *)
  Alcotest.(check bool) "batcher smaller at 16" true
    (Fpan.Sortnet.size (Fpan.Sortnet.batcher 16) < Fpan.Sortnet.size (Fpan.Sortnet.transposition 16))

(* The Section 6 connection made concrete: a certified expansion
   addition whose branchy magnitude-merge is replaced by a fixed
   comparator schedule. *)
let sortnet_add net x y =
  let v = Array.append x y in
  Fpan.Sortnet.sort_floats_by_magnitude net v;
  Baselines.Campary.renormalize v (Array.length x)

let test_sortnet_add_accuracy () =
  let net = Fpan.Sortnet.batcher 8 in
  for _ = 1 to 3000 do
    let x, y = Fpan.Gen.pair rng ~n:4 ~e0_min:(-50) ~e0_max:50 () in
    let s = sortnet_add net x y in
    let ref_ = Exact.sum (Exact.sum_floats x) (Exact.sum_floats y) in
    let diff = Exact.sum (Exact.sum_floats s) (Exact.neg ref_) in
    let d = Float.abs (Exact.approx (Exact.compress diff)) in
    let r = Float.abs (Exact.approx (Exact.compress ref_)) in
    if d <> 0.0 && r > 0.0 && Float.log2 d -. Float.log2 r > -200.0 then
      Alcotest.failf "sortnet add error 2^%.1f" (Float.log2 d -. Float.log2 r)
  done

let () =
  Alcotest.run "sortnet"
    [ ( "networks",
        [ Alcotest.test_case "0-1 principle" `Quick test_01_principle;
          Alcotest.test_case "sorts random" `Quick test_sorts_random;
          Alcotest.test_case "magnitude order" `Quick test_magnitude_sort;
          Alcotest.test_case "size/depth" `Quick test_size_depth;
          Alcotest.test_case "sortnet-merge add" `Quick test_sortnet_add_accuracy ] ) ]
