(* Tests for the polynomial module. *)

module M = Multifloat.Mf4
module P = Multifloat.Poly.Make (Multifloat.Mf4)
module P2 = Multifloat.Poly.Make (Multifloat.Mf2)

let rng = Random.State.make [| 0x901; 11 |]

let test_eval_simple () =
  (* p(x) = 1 + 2x + 3x^2 at x = 2: 1 + 4 + 12 = 17 *)
  let p = P.of_float_coeffs [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "17" true (M.equal (P.eval p (M.of_int 2)) (M.of_int 17));
  Alcotest.(check bool) "empty" true (M.is_zero (P.eval [||] (M.of_int 5)));
  Alcotest.(check bool) "constant" true (M.equal (P.eval (P.of_float_coeffs [| 7.0 |]) (M.of_int 3)) (M.of_int 7))

let test_derivative () =
  (* d/dx (1 + 2x + 3x^2 + 4x^3) = 2 + 6x + 12x^2; at x = 1: 20 *)
  let p = P.of_float_coeffs [| 1.0; 2.0; 3.0; 4.0 |] in
  let d = P.derivative p in
  Alcotest.(check int) "degree" 2 (P.degree d);
  Alcotest.(check bool) "at 1" true (M.equal (P.eval d M.one) (M.of_int 20));
  let v, dv = P.eval_with_derivative p M.one in
  Alcotest.(check bool) "value" true (M.equal v (M.of_int 10));
  Alcotest.(check bool) "deriv" true (M.equal dv (M.of_int 20))

let test_add_mul () =
  let a = P.of_float_coeffs [| 1.0; 1.0 |] in
  (* (1 + x)^2 = 1 + 2x + x^2 *)
  let sq = P.mul a a in
  Alcotest.(check bool) "sq" true
    (M.equal sq.(0) M.one && M.equal sq.(1) M.two && M.equal sq.(2) M.one);
  let s = P.add a (P.of_float_coeffs [| 0.0; 0.0; 5.0 |]) in
  Alcotest.(check int) "add degree" 2 (P.degree s);
  Alcotest.(check bool) "add val" true (M.equal (P.eval s M.one) (M.of_int 7))

let test_from_roots () =
  (* (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6 *)
  let p = P.from_roots [| M.of_int 1; M.of_int 2; M.of_int 3 |] in
  let expect = [| -6; 11; -6; 1 |] in
  Array.iteri
    (fun i e -> if not (M.equal p.(i) (M.of_int e)) then Alcotest.failf "coeff %d" i)
    expect;
  (* roots evaluate to exactly zero *)
  List.iter
    (fun r -> if not (M.is_zero (P.eval p (M.of_int r))) then Alcotest.failf "root %d" r)
    [ 1; 2; 3 ]

let test_newton_root () =
  (* sqrt 2 as the positive root of x^2 - 2 *)
  let p = P.of_float_coeffs [| -2.0; 0.0; 1.0 |] in
  let r = P.newton_root p ~x0:(M.of_string "1.4") () in
  let err = Float.abs (M.to_float (M.sub (M.mul r r) M.two)) in
  Alcotest.(check bool) (Printf.sprintf "err %h" err) true (err < 1e-60);
  (* agrees with M.sqrt *)
  let d = Float.abs (M.to_float (M.sub r (M.sqrt M.two))) in
  Alcotest.(check bool) "matches sqrt" true (d < 1e-60)

let test_newton_wilkinson_root () =
  let w = P.from_roots (Array.init 20 (fun i -> M.of_int (i + 1))) in
  List.iter
    (fun k ->
      let x0 = M.add_float (M.of_int k) 0.004 in
      let r = P.newton_root w ~x0 () in
      let d = Float.abs (M.to_float (M.sub r (M.of_int k))) in
      if d > 1e-50 then Alcotest.failf "wilkinson root %d off by %h" k d)
    [ 1; 7; 14; 20 ]

let test_random_roundtrip () =
  (* from_roots then eval at a random point equals the product form. *)
  for _ = 1 to 50 do
    let k = 1 + Random.State.int rng 6 in
    let roots = Array.init k (fun _ -> M.of_float (Random.State.float rng 4.0 -. 2.0)) in
    let p = P.from_roots roots in
    let x = M.of_float (Random.State.float rng 4.0 -. 2.0) in
    let via_poly = P.eval p x in
    let via_prod = Array.fold_left (fun acc r -> M.mul acc (M.sub x r)) M.one roots in
    let d = Float.abs (M.to_float (M.sub via_poly via_prod)) in
    let scale = Float.max 1e-300 (Float.abs (M.to_float via_prod)) in
    if d > scale *. 1e-55 && d > 1e-60 then Alcotest.failf "roundtrip diff %h" d
  done

let test_mf2_precision_limit () =
  (* The same Wilkinson refinement at 107 bits still works (smaller
     margin). *)
  let w = P2.from_roots (Array.init 20 (fun i -> Multifloat.Mf2.of_int (i + 1))) in
  let r = P2.newton_root w ~x0:(Multifloat.Mf2.of_string "14.002") () in
  let d = Float.abs (Multifloat.Mf2.to_float (Multifloat.Mf2.sub r (Multifloat.Mf2.of_int 14))) in
  Alcotest.(check bool) (Printf.sprintf "mf2 wilkinson: %h" d) true (d < 1e-12)

let () =
  Alcotest.run "poly"
    [ ( "poly",
        [ Alcotest.test_case "eval" `Quick test_eval_simple;
          Alcotest.test_case "derivative" `Quick test_derivative;
          Alcotest.test_case "add/mul" `Quick test_add_mul;
          Alcotest.test_case "from_roots" `Quick test_from_roots;
          Alcotest.test_case "newton sqrt2" `Quick test_newton_root;
          Alcotest.test_case "newton wilkinson" `Quick test_newton_wilkinson_root;
          Alcotest.test_case "random roundtrip" `Quick test_random_roundtrip;
          Alcotest.test_case "mf2 limit" `Quick test_mf2_precision_limit ] ) ]
