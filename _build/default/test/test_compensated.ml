(* Tests for the compensated summation / dot algorithms (paper §6
   related work): accuracy ordering naive < Kahan <= Neumaier = Sum2,
   and Dot2 matching as-if-2-fold-precision. *)

let rng = Random.State.make [| 0xc0; 81 |]

let exact_sum xs = Exact.sum_floats xs

let rel_err approx exact =
  let d = Float.abs (Exact.approx (Exact.compress (Exact.grow exact (-.approx)))) in
  let r = Float.abs (Exact.approx (Exact.compress exact)) in
  if r = 0.0 then d else d /. r

let naive_sum xs = Array.fold_left ( +. ) 0.0 xs

(* Ill-conditioned sum: big terms cancel, the answer lives in the
   tails. *)
let nasty_sum n =
  let xs = Array.init n (fun _ -> Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 40)) in
  let ys = Array.map (fun x -> -.x *. (1.0 +. Float.ldexp 1.0 (-30))) xs in
  Array.append xs ys

let test_sum_accuracy_ordering () =
  for _ = 1 to 50 do
    let xs = nasty_sum 100 in
    let exact = exact_sum xs in
    let e_naive = rel_err (naive_sum xs) exact in
    let e_neum = rel_err (Blas.Compensated.neumaier_sum xs) exact in
    let e_sum2 = rel_err (Blas.Compensated.sum2 xs) exact in
    (* compensated results must be at least as good, usually far
       better; allow equality for benign cases *)
    if e_neum > e_naive +. 1e-18 then Alcotest.fail "neumaier worse than naive";
    if e_sum2 > e_naive +. 1e-18 then Alcotest.fail "sum2 worse than naive";
    if e_sum2 > 1e-12 then Alcotest.failf "sum2 error %e too big" e_sum2
  done

let test_kahan_vs_naive () =
  (* The classic: 1 + tiny + tiny + ... *)
  let n = 100000 in
  let tiny = 1e-18 in
  let xs = Array.init (n + 1) (fun i -> if i = 0 then 1.0 else tiny) in
  let expected = 1.0 +. (Float.of_int n *. tiny) in
  let naive = naive_sum xs in
  let kahan = Blas.Compensated.kahan_sum xs in
  Alcotest.(check bool) "naive loses the tinies" true (naive = 1.0);
  Alcotest.(check bool) "kahan keeps them" true (Float.abs (kahan -. expected) < 1e-16)

let test_sum2_is_two_fold () =
  (* Sum2's result must equal the sum computed in Mf2 then rounded. *)
  for _ = 1 to 100 do
    let xs = nasty_sum 60 in
    let s2 = Blas.Compensated.sum2 xs in
    let m =
      Array.fold_left (fun acc x -> Multifloat.Mf2.add_float acc x) Multifloat.Mf2.zero xs
    in
    let m2 = Multifloat.Mf2.to_float m in
    (* Not bit-identical (different accumulation orders), but both are
       as-if-2-fold: they agree to ~2^-90 of the exact value's scale. *)
    let scale = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 xs in
    if Float.abs (s2 -. m2) > scale *. Float.ldexp 1.0 (-85) then
      Alcotest.failf "sum2 %h vs mf2 %h" s2 m2
  done

let test_dot2_accuracy () =
  for _ = 1 to 50 do
    let n = 80 in
    let x = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    (* y chosen to largely cancel the dot product *)
    let y = Array.init n (fun i -> if i < n - 1 then Random.State.float rng 2.0 -. 1.0 else 0.0) in
    let partial = ref Exact.zero in
    for i = 0 to n - 2 do
      partial := Exact.sum !partial (Exact.mul (Exact.of_float x.(i)) (Exact.of_float y.(i)))
    done;
    y.(n - 1) <- -.Exact.approx !partial /. x.(n - 1);
    let exact =
      let acc = ref Exact.zero in
      Array.iteri
        (fun i xi -> acc := Exact.sum !acc (Exact.mul (Exact.of_float xi) (Exact.of_float y.(i))))
        x;
      !acc
    in
    let d2 = Blas.Compensated.dot2 x y in
    let abs_exact = Float.abs (Exact.approx (Exact.compress exact)) in
    (* as-if-2-fold: absolute error ~ 2^-106 * sum |x_i y_i| *)
    let scale = Array.fold_left (fun a (x, y) -> a +. Float.abs (x *. y)) 0.0 (Array.combine x y) in
    if Float.abs (d2 -. Exact.approx (Exact.compress exact)) > scale *. Float.ldexp 1.0 (-90) then
      Alcotest.failf "dot2 off: %h (exact %h)" d2 abs_exact
  done

let test_empty_and_singleton () =
  Alcotest.(check (float 0.0)) "empty kahan" 0.0 (Blas.Compensated.kahan_sum [||]);
  Alcotest.(check (float 0.0)) "empty sum2" 0.0 (Blas.Compensated.sum2 [||]);
  Alcotest.(check (float 0.0)) "singleton" 42.0 (Blas.Compensated.neumaier_sum [| 42.0 |]);
  Alcotest.(check (float 0.0)) "dot2 empty" 0.0 (Blas.Compensated.dot2 [||] [||])

let () =
  Alcotest.run "compensated"
    [ ( "sums",
        [ Alcotest.test_case "accuracy ordering" `Quick test_sum_accuracy_ordering;
          Alcotest.test_case "kahan vs naive" `Quick test_kahan_vs_naive;
          Alcotest.test_case "sum2 = 2-fold" `Quick test_sum2_is_two_fold;
          Alcotest.test_case "edge cases" `Quick test_empty_and_singleton ] );
      ("dots", [ Alcotest.test_case "dot2 accuracy" `Quick test_dot2_accuracy ]) ]
