test/test_f32.ml: Alcotest Array Bigfloat Exact Float Gpu32 Int64 List Multifloat Printf Random
