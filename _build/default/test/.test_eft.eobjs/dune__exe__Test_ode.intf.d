test/test_ode.mli:
