test/test_multifloat.mli:
