test/test_compensated.ml: Alcotest Array Blas Exact Float Multifloat Random
