test/test_ozaki.mli:
