test/test_eft.ml: Alcotest Eft Exact Float List Printf QCheck QCheck_alcotest
