test/test_multifloat.ml: Alcotest Array Eft Exact Float Fpan List Multifloat Printf Random Stdlib String
