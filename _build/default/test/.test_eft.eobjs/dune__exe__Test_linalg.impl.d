test/test_linalg.ml: Alcotest Array Float Linalg Multifloat Printf Random
