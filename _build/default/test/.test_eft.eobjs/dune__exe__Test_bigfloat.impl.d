test/test_bigfloat.ml: Alcotest Bigfloat Eft Float Fpan Int64 List Random
