test/test_batch.ml: Alcotest Array Blas Eft Float Fpan Int64 List Multifloat Parallel Printf QCheck QCheck_alcotest Random String
