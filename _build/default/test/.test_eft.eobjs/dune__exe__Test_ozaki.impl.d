test/test_ozaki.ml: Alcotest Array Blas Eft Exact Float Random
