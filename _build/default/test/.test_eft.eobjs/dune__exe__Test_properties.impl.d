test/test_properties.ml: Alcotest Array Baselines Bigfloat Eft Exact Float Fpan Gpu32 List Multifloat Printf QCheck QCheck_alcotest Random String
