test/test_edge_semantics.ml: Alcotest Float Int64 Multifloat
