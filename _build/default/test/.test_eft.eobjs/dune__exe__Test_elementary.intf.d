test/test_elementary.mli:
