test/test_eval.ml: Alcotest Float List Multifloat
