test/test_blas.ml: Alcotest Array Blas Exact Float List Parallel Random
