test/test_edge_semantics.mli:
