test/test_fft.ml: Alcotest Array Float List Multifloat Printf Random
