test/test_golden.ml: Alcotest Array Bigfloat Fpan Int64 Multifloat
