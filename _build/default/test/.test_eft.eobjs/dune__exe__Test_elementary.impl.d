test/test_elementary.ml: Alcotest Bigfloat Float Multifloat Random
