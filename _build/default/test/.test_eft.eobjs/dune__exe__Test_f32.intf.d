test/test_f32.mli:
