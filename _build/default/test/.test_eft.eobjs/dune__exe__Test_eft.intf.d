test/test_eft.mli:
