test/test_ode.ml: Alcotest Array Float Multifloat Ode Printf
