test/test_exact.ml: Alcotest Array Eft Exact Float Gen List Printf QCheck QCheck_alcotest
