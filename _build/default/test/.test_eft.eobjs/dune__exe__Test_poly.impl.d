test/test_poly.ml: Alcotest Array Float List Multifloat Printf Random
