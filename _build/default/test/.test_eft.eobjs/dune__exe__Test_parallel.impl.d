test/test_parallel.ml: Alcotest Array Float Mutex Parallel
