test/test_fpan.ml: Alcotest Array Eft Exact Float Fpan List Printf Random String
