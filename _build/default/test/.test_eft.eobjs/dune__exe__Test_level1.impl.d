test/test_level1.ml: Alcotest Array Blas Float Multifloat Random
