test/test_baselines.ml: Alcotest Array Baselines Bigfloat Eft Exact Float Fpan Multifloat Printf Random
