test/test_sortnet.ml: Alcotest Array Baselines Exact Float Fpan List Random Stdlib
