test/test_bigfloat.mli:
