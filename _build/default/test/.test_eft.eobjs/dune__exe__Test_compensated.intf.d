test/test_compensated.mli:
