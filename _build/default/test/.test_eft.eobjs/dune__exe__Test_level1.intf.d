test/test_level1.mli:
