test/test_fpan.mli:
