(* Golden regression tests: exact component-level outputs of the core
   operations on fixed inputs.  The FPAN wirings define bit-exact
   results; any change to a network, kernel transcription, or rounding
   path shows up here first, with the expected values embedded as hex
   literals (captured from the verified implementation). *)

module M2 = Multifloat.Mf2
module M3 = Multifloat.Mf3
module M4 = Multifloat.Mf4

let check_components name got expect =
  if Array.length got <> Array.length expect then Alcotest.failf "%s: arity" name;
  Array.iteri
    (fun i g ->
      if Int64.bits_of_float g <> Int64.bits_of_float expect.(i) then
        Alcotest.failf "%s component %d: got %h, expected %h" name i g expect.(i))
    got

(* A fixed pair of 4-term expansions used across the golden cases. *)
let ax = [| 0x1.921fb54442d18p+1; 0x1.1a62633145c07p-53; -0x1.f1976b7ed8fbcp-109; 0x1.4cf98e804177dp-163 |]
let bx = [| 0x1.5bf0a8b145769p+1; 0x1.4d57ee2b1013ap-53; -0x1.618713a31d3e2p-109; 0x1.c5a6d2b53c26dp-163 |]

let test_mf2_golden () =
  let a = M2.of_components (Array.sub ax 0 2) in
  let b = M2.of_components (Array.sub bx 0 2) in
  check_components "mf2 add" (M2.components (M2.add a b))
    [| 0x1.77082efac4241p+2; -0x1.9845aea3aa2cp-53 |];
  check_components "mf2 sub" (M2.components (M2.sub a b))
    [| 0x1.b1786497ead78p-2; -0x1.97ac57ce52998p-56 |];
  check_components "mf2 mul" (M2.components (M2.mul a b))
    [| 0x1.114580b45d475p+3; -0x1.867bdea1974bcp-51 |];
  check_components "mf2 div" (M2.components (M2.div a b))
    [| 0x1.27ddbf6271dbep+0; -0x1.023c476cc3363p-56 |];
  check_components "mf2 sqrt" (M2.components (M2.sqrt a))
    [| 0x1.c5bf891b4ef6bp+0; -0x1.618f13eb7ca89p-54 |]

let test_mf3_golden () =
  let a = M3.of_components (Array.sub ax 0 3) in
  let b = M3.of_components (Array.sub bx 0 3) in
  check_components "mf3 add" (M3.components (M3.add a b))
    [| 0x1.77082efac4241p+2; -0x1.9845aea3aa2bfp-53; -0x1.a98f3f90fb1cfp-108 |];
  check_components "mf3 mul" (M3.components (M3.mul a b))
    [| 0x1.114580b45d475p+3; -0x1.867bdea1974bdp-51; 0x1.4e0463c225c84p-106 |]

let test_mf4_golden () =
  let a = M4.of_components ax in
  let b = M4.of_components bx in
  check_components "mf4 add" (M4.components (M4.add a b))
    [| 0x1.77082efac4241p+2; -0x1.9845aea3aa2bfp-53; -0x1.a98f3f90fb1cfp-108; 0x1.8950309abecf5p-162 |];
  check_components "mf4 mul" (M4.components (M4.mul a b))
    [| 0x1.114580b45d475p+3; -0x1.867bdea1974bdp-51; 0x1.4e0463c225c84p-106; -0x1.a1cccb186a09cp-160 |]

let test_string_golden () =
  (* pi * e at 4 terms, 60 digits. *)
  let a = M4.of_components ax in
  let b = M4.of_components bx in
  Alcotest.(check string) "pi*e"
    "8.53973422267356706546355086954657449503488853576511496187960"
    (M4.to_string ~digits:60 (M4.mul a b));
  Alcotest.(check string) "pi-e"
    "4.23310825130748003102355911926840386439922305675146246007977e-01"
    (M4.to_string ~digits:60 (M4.sub a b))

let test_network_interpreter_golden () =
  (* One fixed run of the raw add2 network. *)
  let out =
    Fpan.Interp.run Fpan.Networks.add2
      [| 1.0; 0x1p-30; 0x1p-55; -0x1p-85 |]
  in
  check_components "add2 interp" out [| 0x1.00000004p+0; 0x1.fffffff8p-56 |]

let test_bigfloat_golden () =
  let b = Bigfloat.of_string ~prec:120 "3.14159265358979323846264338327950288" in
  Alcotest.(check string) "bigfloat pi parse" "3.14159265358979323846264338327950288"
    (Bigfloat.to_string ~digits:36 b);
  let s = Bigfloat.sqrt (Bigfloat.of_int ~prec:150 2) in
  Alcotest.(check string) "bigfloat sqrt2"
    "1.414213562373095048801688724209698078569671875"
    (Bigfloat.to_string ~digits:46 s)

let test_bigfloat_transcendental_golden () =
  let p = 200 in
  Alcotest.(check string) "pi 50"
    "3.1415926535897932384626433832795028841971693993751"
    (Bigfloat.to_string ~digits:50 (Bigfloat.pi ~prec:p));
  Alcotest.(check string) "ln2 50"
    "6.9314718055994530941723212145817656807550013436026e-01"
    (Bigfloat.to_string ~digits:50 (Bigfloat.ln2 ~prec:p));
  Alcotest.(check string) "exp 10"
    "2.2026465794806716516957900645284244366353512618557e+04"
    (Bigfloat.to_string ~digits:50 (Bigfloat.exp (Bigfloat.of_int ~prec:p 10)));
  Alcotest.(check string) "log 10"
    "2.3025850929940456840179914546843642076011014886288"
    (Bigfloat.to_string ~digits:50 (Bigfloat.log (Bigfloat.of_int ~prec:p 10)));
  Alcotest.(check string) "sin 1"
    "8.4147098480789650665250232163029899962256306079837e-01"
    (Bigfloat.to_string ~digits:50 (Bigfloat.sin (Bigfloat.of_int ~prec:p 1)));
  Alcotest.(check string) "atan 1 = pi/4"
    "7.8539816339744830961566084581987572104929234984378e-01"
    (Bigfloat.to_string ~digits:50 (Bigfloat.atan (Bigfloat.of_int ~prec:p 1)))

let () =
  Alcotest.run "golden"
    [ ( "golden",
        [ Alcotest.test_case "mf2" `Quick test_mf2_golden;
          Alcotest.test_case "mf3" `Quick test_mf3_golden;
          Alcotest.test_case "mf4" `Quick test_mf4_golden;
          Alcotest.test_case "strings" `Quick test_string_golden;
          Alcotest.test_case "network interp" `Quick test_network_interpreter_golden;
          Alcotest.test_case "bigfloat" `Quick test_bigfloat_golden;
          Alcotest.test_case "bigfloat transcendentals" `Quick test_bigfloat_transcendental_golden ] ) ]
