(* Tests for the dense extended-precision linear algebra package. *)

let rng = Random.State.make [| 0x11a; 22 |]

module L4 = Linalg.Make (Multifloat.Mf4)
module L2 = Linalg.Make (Multifloat.Mf2)
module M4 = Multifloat.Mf4
module M2 = Multifloat.Mf2

let random_mat n = Array.init (n * n) (fun _ -> Random.State.float rng 4.0 -. 2.0)
let random_vec n = Array.init n (fun _ -> Random.State.float rng 4.0 -. 2.0)

let residual_small (type a) (module M : Multifloat.Ops.S with type t = a) ~bits r x =
  let module L = Linalg.Make (M) in
  let rn = M.to_float (L.norm_inf r) in
  let xn = M.to_float (L.norm_inf x) in
  rn = 0.0 || rn <= Float.max 1.0 xn *. Float.ldexp 1.0 (-bits)

let test_solve_random () =
  for _ = 1 to 20 do
    let n = 2 + Random.State.int rng 10 in
    let af = random_mat n and bf = random_vec n in
    let a = L4.mat_of_floats af and b = L4.vec_of_floats bf in
    match L4.solve ~n a b with
    | x ->
        let r = L4.residual ~n ~a ~x ~b in
        if not (residual_small (module M4) ~bits:190 r x) then
          Alcotest.failf "solve residual too large (n=%d)" n
    | exception Linalg.Singular _ -> () (* random singular matrix: fine *)
  done

let test_solve_identity () =
  let n = 5 in
  let a = Array.init (n * n) (fun k -> if k / n = k mod n then M4.one else M4.zero) in
  let b = L4.vec_of_floats (random_vec n) in
  let x = L4.solve ~n a b in
  Array.iteri (fun i xi -> if not (M4.equal xi b.(i)) then Alcotest.fail "identity solve") x

let test_singular_detected () =
  let n = 3 in
  (* Rank-deficient: two equal rows. *)
  let a = L4.mat_of_floats [| 1.; 2.; 3.; 1.; 2.; 3.; 4.; 5.; 6. |] in
  (match L4.lu_factor ~n a with
  | _ -> Alcotest.fail "expected Singular"
  | exception Linalg.Singular _ -> ());
  Alcotest.(check bool) "det = 0" true (M4.is_zero (L4.det ~n a))

let test_det () =
  let n = 2 in
  let a = L4.mat_of_floats [| 3.; 1.; 4.; 2. |] in
  Alcotest.(check bool) "2x2 det" true (M4.equal (L4.det ~n a) (M4.of_int 2));
  (* det of a permutation matrix is +-1 *)
  let p = L4.mat_of_floats [| 0.; 1.; 0.; 0.; 0.; 1.; 1.; 0.; 0. |] in
  Alcotest.(check bool) "perm det" true (M4.equal (L4.det ~n:3 p) M4.one)

let test_inverse () =
  for _ = 1 to 10 do
    let n = 2 + Random.State.int rng 6 in
    let af = random_mat n in
    let a = L4.mat_of_floats af in
    match L4.inverse ~n a with
    | inv ->
        let prod = L4.mat_mul ~n a inv in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let expect = if i = j then 1.0 else 0.0 in
            let got = M4.to_float prod.((i * n) + j) in
            if Float.abs (got -. expect) > 1e-40 then Alcotest.failf "A inv(A) at %d %d: %h" i j got
          done
        done
    | exception Linalg.Singular _ -> ()
  done

let test_cholesky () =
  for _ = 1 to 10 do
    let n = 2 + Random.State.int rng 6 in
    (* SPD matrix: B^T B + n I. *)
    let bf = random_mat n in
    let a =
      Array.init (n * n) (fun k ->
          let i = k / n and j = k mod n in
          let acc = ref (if i = j then Float.of_int n else 0.0) in
          for p = 0 to n - 1 do
            acc := !acc +. (bf.((p * n) + i) *. bf.((p * n) + j))
          done;
          M4.of_float !acc)
    in
    let l = L4.cholesky ~n a in
    (* L L^T = A to working precision. *)
    let lt = Array.init (n * n) (fun k -> l.(((k mod n) * n) + (k / n))) in
    let prod = L4.mat_mul ~n l lt in
    for k = 0 to (n * n) - 1 do
      let d = M4.to_float (M4.sub prod.(k) a.(k)) in
      if Float.abs d > 1e-50 then Alcotest.failf "cholesky LL^T at %d: %h" k d
    done;
    (* and the solve agrees with LU. *)
    let b = L4.vec_of_floats (random_vec n) in
    let x1 = L4.cholesky_solve ~n a b in
    let x2 = L4.solve ~n a b in
    for i = 0 to n - 1 do
      let d = M4.to_float (M4.sub x1.(i) x2.(i)) in
      if Float.abs d > 1e-45 then Alcotest.fail "cholesky vs LU solve"
    done
  done

let test_cholesky_not_spd () =
  let a = L4.mat_of_floats [| 1.; 2.; 2.; 1. |] in
  match L4.cholesky ~n:2 a with
  | _ -> Alcotest.fail "expected Singular for indefinite matrix"
  | exception Linalg.Singular _ -> ()

let test_norms () =
  let v = L4.vec_of_floats [| 3.0; -4.0 |] in
  Alcotest.(check bool) "norm2 3-4" true (M4.equal (L4.norm2 v) (M4.of_int 5));
  Alcotest.(check bool) "norm_inf" true (M4.equal (L4.norm_inf v) (M4.of_int 4))

(* Mixed-precision iterative refinement. *)
module R4 = Linalg.Refine (Multifloat.Mf4)
module R2 = Linalg.Refine (Multifloat.Mf2)

let hilbert n = Array.init (n * n) (fun k -> 1.0 /. Float.of_int ((k / n) + (k mod n) + 1))

let test_refinement_hilbert () =
  (* Hilbert n=8 (cond ~1e10): double LU alone gives ~6 digits; the
     refined solution must be accurate to Mf4's working precision. *)
  let n = 8 in
  let a = hilbert n in
  let am = L4.mat_of_floats a in
  let x_true = Array.init n (fun i -> M4.of_int (i + 1)) in
  let b = L4.mat_vec ~n am x_true in
  let x, stats = R4.solve ~n ~a ~b () in
  Alcotest.(check bool) "converged" true stats.R4.converged;
  Alcotest.(check bool) "a few iterations" true (stats.R4.iterations >= 2 && stats.R4.iterations <= 35);
  for i = 0 to n - 1 do
    let d = Float.abs (M4.to_float (M4.sub x.(i) x_true.(i))) in
    (* b was computed in Mf4 from x_true, so refinement should recover
       x_true almost exactly. *)
    if d > 1e-45 then Alcotest.failf "refined x_%d off by %h (%d iters)" i d stats.R4.iterations
  done

let test_refinement_beats_double () =
  let n = 10 in
  let a = hilbert n in
  let am = L2.mat_of_floats a in
  let x_true = Array.init n (fun _ -> M2.one) in
  let b = L2.mat_vec ~n am x_true in
  let x, _ = R2.solve ~n ~a ~b () in
  let err =
    Array.fold_left
      (fun acc xi -> Float.max acc (Float.abs (M2.to_float (M2.sub xi M2.one))))
      0.0 x
  in
  (* double-only LU on Hilbert-10 has error ~1e-4; at 107 bits the
     attainable accuracy is ~cond * 2^-107 ~ 1e-19. *)
  Alcotest.(check bool) (Printf.sprintf "refined error %h" err) true (err < 1e-18)

let test_refinement_well_conditioned () =
  let n = 12 in
  let a = random_mat n in
  (* make it diagonally dominant *)
  for i = 0 to n - 1 do
    a.((i * n) + i) <- 10.0 +. Float.abs a.((i * n) + i)
  done;
  let am = L4.mat_of_floats a in
  let x_true = Array.init n (fun i -> M4.div (M4.of_int (i + 1)) (M4.of_int 7)) in
  let b = L4.mat_vec ~n am x_true in
  let x, stats = R4.solve ~n ~a ~b () in
  Alcotest.(check bool) "converged" true stats.R4.converged;
  for i = 0 to n - 1 do
    let d = Float.abs (M4.to_float (M4.sub x.(i) x_true.(i))) in
    if d > 1e-55 then Alcotest.failf "x_%d off by %h" i d
  done

let () =
  Alcotest.run "linalg"
    [ ( "lu",
        [ Alcotest.test_case "solve random" `Quick test_solve_random;
          Alcotest.test_case "identity" `Quick test_solve_identity;
          Alcotest.test_case "singular" `Quick test_singular_detected;
          Alcotest.test_case "det" `Quick test_det;
          Alcotest.test_case "inverse" `Quick test_inverse ] );
      ( "cholesky",
        [ Alcotest.test_case "factor + solve" `Quick test_cholesky;
          Alcotest.test_case "rejects indefinite" `Quick test_cholesky_not_spd ] );
      ("norms", [ Alcotest.test_case "norms" `Quick test_norms ]);
      ( "refinement",
        [ Alcotest.test_case "hilbert 8" `Quick test_refinement_hilbert;
          Alcotest.test_case "beats double" `Quick test_refinement_beats_double;
          Alcotest.test_case "well conditioned" `Quick test_refinement_well_conditioned ] ) ]
