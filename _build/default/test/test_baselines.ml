(* Tests for the reimplemented competitor baselines (QD, CAMPARY).

   These must be accurate in their documented class — and QD's
   sloppy_add must exhibit the cancellation failure the paper cites
   (footnote 5), which our FPANs provably avoid. *)

module Qd_dd = Baselines.Qd_dd
module Qd_qd = Baselines.Qd_qd
module Campary = Baselines.Campary

let rng = Random.State.make [| 0xba5e; 3 |]

let exact_of comps = Exact.sum_floats comps

let rel_error_log2 got_comps ref_ =
  let diff = Exact.sum (exact_of got_comps) (Exact.neg ref_) in
  let d = Float.abs (Exact.approx (Exact.compress diff)) in
  let r = Float.abs (Exact.approx (Exact.compress ref_)) in
  if d = 0.0 then Float.neg_infinity
  else if r = 0.0 then Float.infinity
  else Float.log2 d -. Float.log2 r

let check_bits name bound got_comps ref_ =
  let e = rel_error_log2 got_comps ref_ in
  if e > Float.of_int (-bound) then
    Alcotest.failf "%s: relative error 2^%.2f exceeds 2^-%d" name e bound

(* --- double-double --- *)

let random_dd () =
  let c = Fpan.Gen.expansion rng ~n:2 ~e0_min:(-60) ~e0_max:60 () in
  { Qd_dd.hi = c.(0); lo = c.(1) }

let test_dd_add () =
  for _ = 1 to 3000 do
    let a = random_dd () and b = random_dd () in
    let s = Qd_dd.add a b in
    check_bits "dd add" 104
      (Qd_dd.components s)
      (Exact.sum (exact_of (Qd_dd.components a)) (exact_of (Qd_dd.components b)))
  done

let test_dd_mul () =
  for _ = 1 to 3000 do
    let a = random_dd () and b = random_dd () in
    let p = Qd_dd.mul a b in
    check_bits "dd mul" 100
      (Qd_dd.components p)
      (Exact.mul (exact_of (Qd_dd.components a)) (exact_of (Qd_dd.components b)))
  done

let test_dd_div_sqrt () =
  for _ = 1 to 1000 do
    let a = random_dd () and b = random_dd () in
    if b.Qd_dd.hi <> 0.0 then begin
      let q = Qd_dd.div a b in
      check_bits "dd div" 98
        (Qd_dd.components (Qd_dd.mul q b))
        (exact_of (Qd_dd.components a))
    end;
    let x = { a with Qd_dd.hi = Float.abs a.Qd_dd.hi } in
    let x = if x.Qd_dd.hi = 0.0 then Qd_dd.one else x in
    (* keep the expansion consistent after taking |hi| *)
    let x = Qd_dd.add x Qd_dd.zero in
    if x.Qd_dd.hi > 0.0 then begin
      let s = Qd_dd.sqrt x in
      check_bits "dd sqrt" 98 (Qd_dd.components (Qd_dd.mul s s)) (exact_of (Qd_dd.components x))
    end
  done

let test_dd_sloppy_add_fails_on_cancellation () =
  (* The paper (footnote 5) notes the fast branch-free algorithms in
     prior libraries are incorrect on some inputs.  Exhibit it: with
     cancelling leading terms, sloppy_add degrades to ~machine
     precision while ieee_add and our Mf2 stay at 2^-104. *)
  let a = { Qd_dd.hi = 1.0; lo = Float.ldexp 1.0 (-54) -. Float.ldexp 1.0 (-105) } in
  let b = { Qd_dd.hi = -1.0; lo = Float.ldexp 1.0 (-55) } in
  let exact =
    Exact.sum (exact_of (Qd_dd.components a)) (exact_of (Qd_dd.components b))
  in
  let accurate = rel_error_log2 (Qd_dd.components (Qd_dd.add a b)) exact in
  Alcotest.(check bool) "accurate is exact here" true
    (accurate = Float.neg_infinity || accurate < -100.0)

let found_sloppy_failure () =
  (* Search a modest random budget for a sloppy_add result that is
     wrong by more than the ieee_add bound. *)
  let worst = ref Float.neg_infinity in
  for _ = 1 to 20000 do
    let x, y = Fpan.Gen.pair rng ~n:2 ~e0_min:(-40) ~e0_max:40 () in
    let a = { Qd_dd.hi = x.(0); lo = x.(1) } and b = { Qd_dd.hi = y.(0); lo = y.(1) } in
    let exact = Exact.sum (exact_of x) (exact_of y) in
    let e = rel_error_log2 (Qd_dd.components (Qd_dd.sloppy_add a b)) exact in
    if e > !worst && e < Float.infinity then worst := e
  done;
  !worst

let test_sloppy_add_worst_case () =
  let w = found_sloppy_failure () in
  (* sloppy_add's worst case over adversarial inputs is far beyond the
     2^-104 certified bound (typically around 2^-50). *)
  Alcotest.(check bool)
    (Printf.sprintf "sloppy add worst case 2^%.1f is worse than 2^-104" w)
    true (w > -104.0)

(* --- quad-double --- *)

let random_qd () = Qd_qd.of_components (Fpan.Gen.expansion rng ~n:4 ~e0_min:(-60) ~e0_max:60 ())

let test_qd_add () =
  for _ = 1 to 2000 do
    let a = random_qd () and b = random_qd () in
    let s = Qd_qd.add a b in
    check_bits "qd add" 204
      (Qd_qd.components s)
      (Exact.sum (exact_of (Qd_qd.components a)) (exact_of (Qd_qd.components b)))
  done

let test_qd_mul () =
  for _ = 1 to 2000 do
    let a = random_qd () and b = random_qd () in
    let p = Qd_qd.mul a b in
    check_bits "qd mul" 200
      (Qd_qd.components p)
      (Exact.mul (exact_of (Qd_qd.components a)) (exact_of (Qd_qd.components b)))
  done

let test_qd_div_sqrt () =
  for _ = 1 to 300 do
    let a = random_qd () and b = random_qd () in
    if Qd_qd.to_float b <> 0.0 then begin
      let q = Qd_qd.div a b in
      check_bits "qd div" 195 (Qd_qd.components (Qd_qd.mul q b)) (exact_of (Qd_qd.components a))
    end
  done;
  let two = Qd_qd.of_float 2.0 in
  let s = Qd_qd.sqrt two in
  check_bits "qd sqrt2" 200 (Qd_qd.components (Qd_qd.mul s s)) (Exact.of_float 2.0)

let test_qd_renorm_nonoverlapping () =
  for _ = 1 to 2000 do
    let a = random_qd () and b = random_qd () in
    let s = Qd_qd.components (Qd_qd.add a b) in
    if not (Eft.is_nonoverlapping_seq s) then Alcotest.fail "qd add output overlaps"
  done

(* --- CAMPARY --- *)

let test_campary_add n bound =
  for _ = 1 to 2000 do
    let x, y = Fpan.Gen.pair rng ~n ~e0_min:(-60) ~e0_max:60 () in
    let s = Campary.add x y in
    check_bits "campary add" bound s (Exact.sum (exact_of x) (exact_of y));
    (* CAMPARY's certified renormalization guarantees only
       ulp-nonoverlap (|x_{i+1}| <= ulp x_i), weaker than the paper's
       Eq. 8 half-ulp invariant. *)
    let ulp_nonoverlapping =
      let ok = ref true in
      for i = 0 to Array.length s - 2 do
        if s.(i + 1) <> 0.0 && (s.(i) = 0.0 || Float.abs s.(i + 1) > Eft.ulp s.(i)) then ok := false
      done;
      !ok
    in
    if not ulp_nonoverlapping then Alcotest.fail "campary add overlaps"
  done

let test_campary_mul n bound =
  for _ = 1 to 2000 do
    let x, y = Fpan.Gen.pair rng ~n ~e0_min:(-60) ~e0_max:60 () in
    let p = Campary.mul x y in
    check_bits "campary mul" bound p (Exact.mul (exact_of x) (exact_of y))
  done

let test_campary_matches_mf () =
  (* CAMPARY certified and our FPANs must agree to their common error
     bound (they round differently, so not bit-for-bit). *)
  for _ = 1 to 1000 do
    let x, y = Fpan.Gen.pair rng ~n:3 ~e0_min:(-40) ~e0_max:40 () in
    let c = Campary.add x y in
    let m =
      Multifloat.Mf3.components
        (Multifloat.Mf3.add (Multifloat.Mf3.of_components x) (Multifloat.Mf3.of_components y))
    in
    let diff = Exact.sum (exact_of c) (Exact.neg (exact_of m)) in
    let mag = Float.abs (Exact.approx (Exact.compress diff)) in
    let scale = Float.abs (Exact.approx (Exact.compress (exact_of m))) in
    if scale > 0.0 && mag > scale *. Float.ldexp 1.0 (-150) then
      Alcotest.fail "campary and mf3 disagree beyond bounds"
  done

(* --- Arb-style ball arithmetic --- *)

module Arb = Baselines.Arb

let test_arb_enclosure_invariant () =
  (* Track an exact reference at high precision; the ball must always
     contain it through chains of operations. *)
  let prec = 80 in
  let wide = 300 in
  for _ = 1 to 300 do
    let b = ref (Arb.of_float ~prec 1.0) in
    let exact = ref (Bigfloat.of_int ~prec:wide 1) in
    for _ = 1 to 25 do
      let x = Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 8 - 4) in
      let bx = Arb.of_float ~prec x in
      let ex = Bigfloat.of_float ~prec:wide x in
      (match Random.State.int rng 3 with
      | 0 ->
          b := Arb.add !b bx;
          exact := Bigfloat.add !exact ex
      | 1 ->
          b := Arb.sub !b bx;
          exact := Bigfloat.sub !exact ex
      | _ ->
          b := Arb.mul !b bx;
          exact := Bigfloat.mul !exact ex);
      if not (Arb.contains !b (Bigfloat.round_to ~prec:wide !exact)) then
        Alcotest.failf "enclosure lost: %s vs %s" (Arb.to_string !b)
          (Bigfloat.to_string !exact)
    done
  done

let test_arb_radius_growth () =
  (* Radii stay modest for benign chains: 25 ops at prec 80 should keep
     the radius near 25 ulps, i.e. far below 2^-60. *)
  let prec = 80 in
  let b = ref (Arb.of_float ~prec 1.0) in
  for _ = 1 to 25 do
    b := Arb.add !b (Arb.of_float ~prec 0.5)
  done;
  Alcotest.(check bool) "radius small" true (Arb.radius_le !b 1e-18)

let test_arb_division_by_zero_ball () =
  let prec = 60 in
  let zeroish = Arb.make ~mid:(Bigfloat.of_float ~prec 1e-30) ~rad:(Bigfloat.of_float ~prec:30 1.0) in
  let q = Arb.div (Arb.of_float ~prec 1.0) zeroish in
  Alcotest.(check bool) "infinite radius" false (Arb.radius_le q 1e300)

let test_arb_sqrt () =
  let prec = 100 in
  let two = Arb.of_float ~prec 2.0 in
  let s = Arb.sqrt two in
  let sq = Arb.mul s s in
  Alcotest.(check bool) "sqrt2^2 contains 2" true (Arb.contains sq (Bigfloat.of_int ~prec:200 2));
  Alcotest.(check bool) "radius tiny" true (Arb.radius_le s 1e-25);
  Alcotest.(check bool) "sqrt(-1) diverges" false
    (Arb.radius_le (Arb.sqrt (Arb.of_float ~prec (-1.0))) 1e300)

let test_arb_decimal () =
  let prec = 80 in
  let tenth = Arb.of_string ~prec "0.1" in
  let acc = ref (Arb.of_float ~prec 0.0) in
  for _ = 1 to 10 do
    acc := Arb.add !acc tenth
  done;
  Alcotest.(check bool) "sum of ten 0.1 contains 1" true
    (Arb.contains !acc (Bigfloat.of_int ~prec:200 1));
  Alcotest.(check bool) "and is tight" true (Arb.radius_le !acc 1e-20)

let () =
  Alcotest.run "baselines"
    [ ( "qd-dd",
        [ Alcotest.test_case "add accuracy" `Quick test_dd_add;
          Alcotest.test_case "mul accuracy" `Quick test_dd_mul;
          Alcotest.test_case "div/sqrt" `Quick test_dd_div_sqrt;
          Alcotest.test_case "sloppy vs accurate" `Quick test_dd_sloppy_add_fails_on_cancellation;
          Alcotest.test_case "sloppy worst case" `Quick test_sloppy_add_worst_case ] );
      ( "qd-qd",
        [ Alcotest.test_case "add accuracy" `Quick test_qd_add;
          Alcotest.test_case "mul accuracy" `Quick test_qd_mul;
          Alcotest.test_case "div/sqrt" `Quick test_qd_div_sqrt;
          Alcotest.test_case "renorm nonoverlap" `Quick test_qd_renorm_nonoverlapping ] );
      ( "campary",
        [ Alcotest.test_case "add n=2" `Quick (fun () -> test_campary_add 2 102);
          Alcotest.test_case "add n=3" `Quick (fun () -> test_campary_add 3 150);
          Alcotest.test_case "add n=4" `Quick (fun () -> test_campary_add 4 200);
          Alcotest.test_case "mul n=2" `Quick (fun () -> test_campary_mul 2 98);
          Alcotest.test_case "mul n=3" `Quick (fun () -> test_campary_mul 3 148);
          Alcotest.test_case "mul n=4" `Quick (fun () -> test_campary_mul 4 198);
          Alcotest.test_case "agrees with mf3" `Quick test_campary_matches_mf ] );
      ( "arb-balls",
        [ Alcotest.test_case "enclosure invariant" `Quick test_arb_enclosure_invariant;
          Alcotest.test_case "radius growth" `Quick test_arb_radius_growth;
          Alcotest.test_case "zero-ball division" `Quick test_arb_division_by_zero_ball;
          Alcotest.test_case "sqrt" `Quick test_arb_sqrt;
          Alcotest.test_case "decimal balls" `Quick test_arb_decimal ] ) ]
