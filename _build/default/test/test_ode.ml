(* Tests for the ODE integrators: exact solutions, convergence orders,
   symplectic energy conservation, adaptive tolerance honoring. *)

module M = Multifloat.Mf4
module O = Ode.Make (Multifloat.Mf4)
module F = Multifloat.Elementary.F4

(* y' = y, y(0) = 1: y(t) = e^t. *)
let exp_system ~t:_ ~y ~dy = dy.(0) <- y.(0)

(* Harmonic oscillator: y = (q, p), q' = p, p' = -q. *)
let sho ~t:_ ~(y : M.t array) ~(dy : M.t array) =
  dy.(0) <- y.(1);
  dy.(1) <- M.neg y.(0)

let err_vs a b = Float.abs (M.to_float (M.sub a b))

let test_rk4_exp () =
  let y = O.rk4 ~f:exp_system ~t0:M.zero ~h:(M.of_string "0.01") ~steps:100 ~y0:[| M.one |] in
  let e = err_vs y.(0) F.e in
  (* RK4 global error ~ h^4 = 1e-8 scale; with h = 0.01 expect ~1e-10. *)
  Alcotest.(check bool) (Printf.sprintf "rk4 e err %.2e" e) true (e < 1e-9)

let test_rk4_order () =
  (* Halving h must reduce the global error ~16x (4th order).  This is
     only measurable when arithmetic error is negligible -- the point
     of integrating in extended precision. *)
  let run h steps =
    let y = O.rk4 ~f:exp_system ~t0:M.zero ~h:(M.of_string h) ~steps ~y0:[| M.one |] in
    err_vs y.(0) F.e
  in
  let e1 = run "0.02" 50 in
  let e2 = run "0.01" 100 in
  let ratio = e1 /. e2 in
  Alcotest.(check bool) (Printf.sprintf "order ratio %.1f" ratio) true (ratio > 12.0 && ratio < 20.0)

let test_rk4_sho_roundtrip () =
  (* Integrate the oscillator for one full period 2 pi: back to the
     start. *)
  let two_pi = F.two_pi in
  let steps = 2000 in
  let h = M.div two_pi (M.of_int steps) in
  let y = O.rk4 ~f:sho ~t0:M.zero ~h ~steps ~y0:[| M.one; M.zero |] in
  Alcotest.(check bool) "q back to 1" true (err_vs y.(0) M.one < 1e-11);
  Alcotest.(check bool) "p back to 0" true (Float.abs (M.to_float y.(1)) < 1e-11)

let test_leapfrog_energy () =
  (* Symplectic: energy error stays bounded over many periods instead
     of drifting. *)
  let accel ~(q : M.t array) ~(a : M.t array) = a.(0) <- M.neg q.(0) in
  let q = [| M.one |] and p = [| M.zero |] in
  let h = M.of_string "0.05" in
  let energy () =
    M.to_float (M.scale_pow2 (M.add (M.mul q.(0) q.(0)) (M.mul p.(0) p.(0))) (-1))
  in
  let e0 = energy () in
  let worst = ref 0.0 in
  for _ = 1 to 5000 do
    O.leapfrog_step ~accel ~h ~q ~p;
    worst := Float.max !worst (Float.abs (energy () -. e0))
  done;
  (* leapfrog energy oscillates at O(h^2) without secular drift *)
  Alcotest.(check bool) (Printf.sprintf "energy bound %.2e" !worst) true (!worst < 1e-3)

let test_rkf45_exp () =
  let y, stats =
    O.rkf45 ~f:exp_system ~t0:M.zero ~t1:M.one ~h0:(M.of_string "0.1") ~tol:1e-12
      ~y0:[| M.one |]
  in
  let e = err_vs y.(0) F.e in
  Alcotest.(check bool) (Printf.sprintf "rkf45 err %.2e (acc %d rej %d)" e stats.O.steps_accepted
                           stats.O.steps_rejected)
    true (e < 1e-11);
  Alcotest.(check bool) "did adapt" true (stats.O.steps_accepted > 5)

module O2 = Ode.Make (Multifloat.Mf2)
module M2 = Multifloat.Mf2

let exp_system2 ~t:_ ~(y : M2.t array) ~(dy : M2.t array) = dy.(0) <- y.(0)

let test_rkf45_below_double_tolerance () =
  (* Tolerances below double's 1.1e-16 are meaningful in extended
     precision -- the capability a double-precision integrator cannot
     offer.  Run at 107 bits for speed. *)
  let y, stats =
    O2.rkf45 ~f:exp_system2 ~t0:M2.zero ~t1:M2.one ~h0:(M2.of_string "0.02") ~tol:1e-18
      ~y0:[| M2.one |]
  in
  let e2 = Multifloat.Elementary.F2.e in
  let e = Float.abs (M2.to_float (M2.sub y.(0) e2)) in
  Alcotest.(check bool)
    (Printf.sprintf "beyond-double tol: %.2e (%d steps)" e stats.O2.steps_accepted)
    true (e < 5e-17)

let test_rkf45_lands_on_t1 () =
  (* The final clamped step must land exactly on t1. *)
  let y, _ =
    O.rkf45 ~f:sho ~t0:M.zero ~t1:F.two_pi ~h0:(M.of_string "0.3") ~tol:1e-14
      ~y0:[| M.one; M.zero |]
  in
  Alcotest.(check bool) "period roundtrip" true (err_vs y.(0) M.one < 1e-11)

let () =
  Alcotest.run "ode"
    [ ( "fixed-step",
        [ Alcotest.test_case "rk4 exp" `Quick test_rk4_exp;
          Alcotest.test_case "rk4 4th order" `Quick test_rk4_order;
          Alcotest.test_case "rk4 oscillator period" `Quick test_rk4_sho_roundtrip;
          Alcotest.test_case "leapfrog energy" `Quick test_leapfrog_energy ] );
      ( "adaptive",
        [ Alcotest.test_case "rkf45 exp" `Quick test_rkf45_exp;
          Alcotest.test_case "sub-double tolerance" `Quick test_rkf45_below_double_tolerance;
          Alcotest.test_case "lands on t1" `Quick test_rkf45_lands_on_t1 ] ) ]
