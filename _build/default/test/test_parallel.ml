(* Tests for the domain pool. *)

let test_parallel_for_covers () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      (* Distinct indices: no synchronization needed. *)
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index once" true (Array.for_all (fun h -> h = 1) hits))

let test_parallel_for_empty () =
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      let fired = ref false in
      Parallel.Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> fired := true);
      Alcotest.(check bool) "empty range" false !fired)

let test_reduce_sum () =
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      let n = 10_000 in
      let s =
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n ~init:0 ~map:(fun i -> i) ~combine:( + )
      in
      Alcotest.(check int) "gauss" (n * (n - 1) / 2) s)

let test_reduce_deterministic_float () =
  (* Chunked combination must not depend on worker count for a fixed
     chunking; compare 1-domain and k-domain pools on an associative
     reduction (int max) and on float sums with identical chunking
     (sequential fold as the witness). *)
  let n = 5000 in
  let data = Array.init n (fun i -> Float.sin (Float.of_int i)) in
  let via domains =
    Parallel.Pool.with_pool ~domains (fun pool ->
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n ~init:0.0
          ~map:(fun i -> data.(i))
          ~combine:( +. ))
  in
  (* Determinism within the same pool size: run twice. *)
  let a = via 4 and b = via 4 in
  Alcotest.(check (float 0.0)) "same pool size reproducible" a b

let test_pool_reuse () =
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      for _ = 1 to 50 do
        let acc = ref 0 in
        let m = Mutex.create () in
        Parallel.Pool.parallel_for pool ~lo:0 ~hi:100 (fun _ ->
            Mutex.lock m;
            incr acc;
            Mutex.unlock m);
        Alcotest.(check int) "reused batch" 100 !acc
      done)

let test_single_domain_inline () =
  Parallel.Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Parallel.Pool.size pool);
      let s =
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:100 ~init:0 ~map:(fun i -> i) ~combine:( + )
      in
      Alcotest.(check int) "inline" 4950 s)

let test_exception_in_job_no_deadlock () =
  (* A raising job must not wedge the batch accounting. *)
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      let ok = ref 0 in
      let m = Mutex.create () in
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:100 (fun i ->
          if i = 50 then failwith "boom"
          else begin
            Mutex.lock m;
            incr ok;
            Mutex.unlock m
          end);
      (* the pool survives and can run another batch *)
      let s =
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:10 ~init:0 ~map:(fun i -> i) ~combine:( + )
      in
      Alcotest.(check int) "pool alive after exception" 45 s)

let test_large_fanout () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let n = 100_000 in
      let s =
        Parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n ~init:0
          ~map:(fun i -> if i land 1 = 0 then 1 else -1)
          ~combine:( + )
      in
      Alcotest.(check int) "alternating" 0 s)

let test_default_domain_count () =
  let pool = Parallel.Pool.create () in
  Alcotest.(check bool) "at least one" true (Parallel.Pool.size pool >= 1);
  Parallel.Pool.shutdown pool

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "parallel_for covers" `Quick test_parallel_for_covers;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty;
          Alcotest.test_case "reduce sum" `Quick test_reduce_sum;
          Alcotest.test_case "reduce deterministic" `Quick test_reduce_deterministic_float;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "single domain" `Quick test_single_domain_inline;
          Alcotest.test_case "exception in job" `Quick test_exception_in_job_no_deadlock;
          Alcotest.test_case "large fanout" `Quick test_large_fanout;
          Alcotest.test_case "default domains" `Quick test_default_domain_count ] ) ]
