(* Tests for the expression evaluator. *)

module E = Multifloat.Eval.Make (Multifloat.Mf3) (Multifloat.Elementary.F3)
module M = Multifloat.Mf3

let ev s = E.eval s

let check_val name s expect =
  let v = ev s in
  if not (M.equal v (M.of_string expect)) then
    Alcotest.failf "%s: %s evaluated to %s" name s (M.to_string v)

let check_close name s expect =
  let v = ev s in
  let d = Float.abs (M.to_float (M.sub v (M.of_string expect))) in
  if d > Float.abs (float_of_string expect) *. 1e-40 +. 1e-45 then
    Alcotest.failf "%s: %s = %s (expected %s)" name s (M.to_string v) expect

let test_arithmetic () =
  check_val "add" "1 + 2" "3";
  check_val "precedence" "1 + 2 * 3" "7";
  check_val "parens" "(1 + 2) * 3" "9";
  check_val "sub assoc" "10 - 3 - 2" "5";
  check_val "div assoc" "24 / 4 / 2" "3";
  check_val "unary minus" "-5 + 2" "-3";
  check_val "double negative" "--5" "5";
  check_val "power" "2^10" "1024";
  check_val "negative power" "2^-2" "0.25";
  check_val "decimal" "0.125 * 8" "1";
  check_val "scientific" "1e3 + 1" "1001";
  check_val "nested" "((2))" "2"

let test_functions () =
  check_val "sqrt" "sqrt(16)" "4";
  check_val "abs" "abs(-3)" "3";
  check_val "inv" "inv(4)" "0.25";
  check_val "floor" "floor(2.7)" "2";
  check_val "ceil" "ceil(2.1)" "3";
  check_val "round" "round(2.5)" "3";
  check_close "exp log" "log(exp(2))" "2";
  check_close "trig" "sin(0)" "0";
  check_close "pythagoras" "sin(1)^2 + cos(1)^2" "1";
  check_close "atan" "tan(atan(0.7))" "0.7";
  check_close "hyperbolic" "cosh(1)^2 - sinh(1)^2" "1"

let test_constants () =
  check_close "pi" "2 * asin(1) - pi" "0";
  check_close "e" "exp(1) - e" "0"

let test_errors () =
  List.iter
    (fun s ->
      match ev s with
      | exception E.Parse_error _ -> ()
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "%S should fail, got %s" s (M.to_string v))
    [ ""; "1 +"; "(1"; "1)"; "foo(2)"; "2 ^ x"; "1 2"; "@" ]

let test_whitespace_and_case () =
  check_val "spaces" "  1   +   1 " "2";
  check_close "case" "SQRT(4) - 2" "0"

let test_variables () =
  let x = M.of_string "2.5" in
  let v = E.eval_with ~vars:[ ("x", x) ] "x^2 + 1" in
  if not (M.equal v (M.of_string "7.25")) then Alcotest.failf "x^2+1 = %s" (M.to_string v);
  let v = E.eval_with ~vars:[ ("radius", M.of_int 3) ] "pi * radius^2" in
  let expect = M.mul_float Multifloat.Elementary.F3.pi 9.0 in
  if Float.abs (M.to_float (M.sub v expect)) > 1e-40 then Alcotest.fail "area";
  (* unbound variable is a parse error *)
  (match E.eval_with ~vars:[] "y + 1" with
  | exception E.Parse_error _ -> ()
  | _ -> Alcotest.fail "unbound variable accepted");
  (* plain eval does not see stale bindings *)
  match E.eval "x" with
  | exception E.Parse_error _ -> ()
  | _ -> Alcotest.fail "stale binding leaked"

let () =
  Alcotest.run "eval"
    [ ( "eval",
        [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "whitespace/case" `Quick test_whitespace_and_case;
          Alcotest.test_case "variables" `Quick test_variables ] ) ]
