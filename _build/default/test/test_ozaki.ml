(* Tests for the Ozaki splitting scheme (paper Section 4.4's
   wide-exponent-range alternative). *)

let rng = Random.State.make [| 0x07a; 21 |]

let exact_dot x y =
  let acc = ref Exact.zero in
  Array.iteri (fun i xi -> acc := Exact.sum !acc (Exact.mul (Exact.of_float xi) (Exact.of_float y.(i)))) x;
  !acc

let test_split_exact () =
  (* Slices must sum back to the input exactly. *)
  for _ = 1 to 2000 do
    let x = Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 80 - 40) in
    let slices = 1 + Random.State.int rng 5 in
    let parts = Blas.Ozaki.split ~slices ~width:20 x in
    if Exact.sign (Exact.grow (Exact.sum_floats parts) (-.x)) <> 0 then
      Alcotest.failf "split not exact for %h" x
  done

let test_slice_width () =
  Alcotest.(check int) "n=1" 24 (Blas.Ozaki.slice_width ~n:1);
  Alcotest.(check int) "n=1024" 19 (Blas.Ozaki.slice_width ~n:1024);
  Alcotest.(check bool) "positive for big n" true (Blas.Ozaki.slice_width ~n:1_000_000 > 10)

let test_dot_accuracy () =
  (* The result is one double, so the attainable accuracy is half an
     ulp of the value ("as if computed in high precision, rounded
     once"), plus the 2^-(4 width) slice-truncation tail relative to
     sum |x_i y_i|. *)
  for _ = 1 to 200 do
    let n = 1 + Random.State.int rng 200 in
    let x = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    let y = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    let got = Blas.Ozaki.dot x y in
    let e = exact_dot x y in
    let d = Float.abs (Exact.approx (Exact.compress (Exact.grow e (-.got)))) in
    let scale =
      Array.fold_left ( +. ) 0.0 (Array.mapi (fun i xi -> Float.abs (xi *. y.(i))) x)
    in
    let budget = (0.51 *. Eft.ulp got) +. (scale *. Float.ldexp 1.0 (-70)) in
    if d > budget then Alcotest.failf "dot error %h (budget %h)" d budget
  done

let test_dot_cancellation () =
  (* The headline ability: a dot product that cancels ~60 bits still
     comes out almost correctly rounded, where plain double loses
     everything. *)
  for _ = 1 to 100 do
    let n = 50 in
    let x = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    let y = Array.init n (fun i -> if i < n - 1 then Random.State.float rng 2.0 -. 1.0 else 0.0) in
    let partial = ref Exact.zero in
    for i = 0 to n - 2 do
      partial := Exact.sum !partial (Exact.mul (Exact.of_float x.(i)) (Exact.of_float y.(i)))
    done;
    y.(n - 1) <- -.Exact.approx !partial /. x.(n - 1);
    let e = exact_dot x y in
    let got = Blas.Ozaki.dot x y in
    let ev = Exact.approx (Exact.compress e) in
    if ev <> 0.0 && Float.abs ((got -. ev) /. ev) > 1e-6 then
      Alcotest.failf "cancellation dot: got %h exact %h" got ev
  done

let test_wide_exponent_range () =
  (* Where fixed-length expansions lose precision (Section 4.4), the
     slice scheme keeps the leading bits of each magnitude group. *)
  let x = [| 1e200; 1.0; 1e-200 |] in
  let y = [| 1e-200; 1.0; 1e200 |] in
  (* exact dot = 1 + 1 + 1 = 3 *)
  let got = Blas.Ozaki.dot ~slices:3 x y in
  Alcotest.(check (float 1e-10)) "wide range" 3.0 got

let test_gemm_matches_exact () =
  let m = 5 and n = 4 and k = 6 in
  let a = Array.init (m * k) (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let b = Array.init (k * n) (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let c = Array.make (m * n) 0.0 in
  Blas.Ozaki.gemm ~m ~n ~k ~a ~b ~c ();
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let row = Array.init k (fun p -> a.((i * k) + p)) in
      let col = Array.init k (fun p -> b.((p * n) + j)) in
      let e = Exact.approx (Exact.compress (exact_dot row col)) in
      let got = c.((i * n) + j) in
      if Float.abs (got -. e) > Float.abs e *. 1e-12 +. 1e-300 then
        Alcotest.failf "gemm %d %d: %h vs %h" i j got e
    done
  done

let () =
  Alcotest.run "ozaki"
    [ ( "ozaki",
        [ Alcotest.test_case "split exact" `Quick test_split_exact;
          Alcotest.test_case "slice width" `Quick test_slice_width;
          Alcotest.test_case "dot accuracy" `Quick test_dot_accuracy;
          Alcotest.test_case "dot cancellation" `Quick test_dot_cancellation;
          Alcotest.test_case "wide exponent range" `Quick test_wide_exponent_range;
          Alcotest.test_case "gemm" `Quick test_gemm_matches_exact ] ) ]
