(* Tests for the FPAN core: networks, interpreter, checker, static
   analysis, search, rendering. *)

let rng = Random.State.make [| 0xf9a2; 5 |]

(* --- network structure: the table the paper quotes --- *)

let test_size_depth () =
  let expect =
    (* name, size, depth (ours); the paper's Figure 2/5 values (6,4) and
       (3,3) are matched exactly; the reconstructed 3- and 4-term
       networks are a few gates larger (see DESIGN.md). *)
    [ ("add2", 6, 4); ("add3", 18, 12); ("add4", 28, 15); ("mul2", 3, 3); ("mul3", 13, 9);
      ("mul4", 29, 14) ]
  in
  List.iter
    (fun (name, size, depth) ->
      let net = List.assoc name Fpan.Networks.all in
      Alcotest.(check int) (name ^ " size") size (Fpan.Network.size net);
      Alcotest.(check int) (name ^ " depth") depth (Fpan.Network.depth net))
    expect

let test_gate_counts_flops () =
  let net = Fpan.Networks.add2 in
  let adds, ts, fts = Fpan.Network.gate_counts net in
  Alcotest.(check (triple int int int)) "add2 gates" (2, 3, 1) (adds, ts, fts);
  Alcotest.(check int) "add2 flops" ((2 * 1) + (3 * 6) + (1 * 3)) (Fpan.Network.flops net);
  (* Section 4.2 flop accounting: n(n-1)/2 TwoProds (2 flops each) +
     n products + the accumulation network. *)
  Alcotest.(check int) "mul3 flops" (3 + 6 + Fpan.Network.flops Fpan.Networks.mul3)
    (Fpan.Networks.mul_flops 3)

(* --- checker: every network passes its paper bound --- *)

let check_network name terms =
  let net = List.assoc name Fpan.Networks.all in
  let report =
    if String.sub name 0 3 = "mul" then
      Fpan.Checker.check_mul net ~terms ~expand:(Fpan.Networks.mul_expand terms) ~cases:60_000
        ~seed:4242
    else Fpan.Checker.check_add net ~terms ~cases:60_000 ~seed:4242
  in
  if not (Fpan.Checker.passed report) then
    Alcotest.failf "%s: %d failures, worst 2^%.2f" name report.Fpan.Checker.failure_count
      report.Fpan.Checker.worst_error_log2

let test_checker_add2 () = check_network "add2" 2
let test_checker_add3 () = check_network "add3" 3
let test_checker_add4 () = check_network "add4" 4
let test_checker_mul2 () = check_network "mul2" 2
let test_checker_mul3 () = check_network "mul3" 3
let test_checker_mul4 () = check_network "mul4" 4

let test_checker_catches_bad_network () =
  (* The naive termwise sum of Eq. 9 must be rejected immediately. *)
  let open Fpan.Network in
  let naive =
    make ~name:"naive" ~num_wires:4 ~inputs:[| 0; 1; 2; 3 |]
      ~gates:[ { kind = Add; top = 0; bot = 1 }; { kind = Add; top = 2; bot = 3 } ]
      ~outputs:[| 0; 2 |] ~error_exp:105
  in
  let report = Fpan.Checker.check_add naive ~terms:2 ~cases:2000 ~seed:7 in
  Alcotest.(check bool) "naive rejected" false (Fpan.Checker.passed report)

let test_checker_catches_sloppy () =
  (* QD's sloppy double-double addition as an FPAN: correct only
     without cancellation, so the adversarial generator must break it. *)
  let open Fpan.Network in
  let sloppy =
    make ~name:"sloppy" ~num_wires:4 ~inputs:[| 0; 1; 2; 3 |]
      ~gates:
        [ { kind = Two_sum; top = 0; bot = 1 };
          { kind = Add; top = 2; bot = 3 };
          { kind = Add; top = 1; bot = 2 };
          { kind = Fast_two_sum; top = 0; bot = 1 } ]
      ~outputs:[| 0; 1 |] ~error_exp:105
  in
  let report = Fpan.Checker.check_add sloppy ~terms:2 ~cases:50_000 ~seed:7 in
  Alcotest.(check bool) "sloppy rejected" false (Fpan.Checker.passed report)

(* --- interpreter --- *)

let test_audited_matches_run () =
  let net = Fpan.Networks.add3 in
  for _ = 1 to 2000 do
    let x, y = Fpan.Gen.pair rng ~n:3 () in
    let inputs = Fpan.Gen.interleave x y in
    let plain = Fpan.Interp.run net inputs in
    let audit = Fpan.Interp.run_audited net inputs in
    if plain <> audit.Fpan.Interp.outputs then Alcotest.fail "audited outputs differ"
  done

let test_discarded_accounting () =
  (* outputs + discarded = inputs, exactly. *)
  let net = Fpan.Networks.add4 in
  for _ = 1 to 2000 do
    let x, y = Fpan.Gen.pair rng ~n:4 () in
    let inputs = Fpan.Gen.interleave x y in
    let audit = Fpan.Interp.run_audited net inputs in
    let parts =
      Array.concat
        [ inputs;
          Array.map Float.neg audit.Fpan.Interp.outputs;
          Array.map Float.neg (Array.of_list audit.Fpan.Interp.discarded) ]
    in
    if Exact.sign (Exact.sum_floats parts) <> 0 then Alcotest.fail "accounting leak"
  done

(* --- mul_expand --- *)

let test_mul_expand_layout () =
  Alcotest.(check int) "n=2 inputs" 4 (Array.length (Fpan.Networks.mul_expand 2 [| 1.; 0. |] [| 1.; 0. |]));
  Alcotest.(check int) "n=3 inputs" 9
    (Array.length (Fpan.Networks.mul_expand 3 [| 1.; 0.; 0. |] [| 1.; 0.; 0. |]));
  Alcotest.(check int) "n=4 inputs" 16
    (Array.length (Fpan.Networks.mul_expand 4 [| 1.; 0.; 0.; 0. |] [| 1.; 0.; 0.; 0. |]))

let test_mul_expand_value () =
  (* The expansion terms must sum to the exact product up to the
     Section 4.2 cutoff (2^-q of the product). *)
  for _ = 1 to 2000 do
    let x, y = Fpan.Gen.pair rng ~n:3 ~e0_min:(-40) ~e0_max:40 () in
    let parts = Fpan.Networks.mul_expand 3 x y in
    let exact = Exact.mul (Exact.sum_floats x) (Exact.sum_floats y) in
    let diff = Exact.sum (Exact.sum_floats parts) (Exact.neg exact) in
    let mag = Float.abs (Exact.approx (Exact.compress diff)) in
    let scale = Float.abs (Exact.approx (Exact.compress exact)) in
    if scale > 0.0 && mag > scale *. Float.ldexp 1.0 (-157) then
      Alcotest.fail "mul_expand cutoff too lossy"
  done

(* --- generators --- *)

let test_gen_nonoverlapping () =
  for _ = 1 to 5000 do
    let x, y = Fpan.Gen.pair rng ~n:4 () in
    if not (Eft.is_nonoverlapping_seq x && Eft.is_nonoverlapping_seq y) then
      Alcotest.fail "generator produced overlapping expansion"
  done

let test_gen_interleave () =
  let x = [| 1.0; 2.0 |] and y = [| 3.0; 4.0 |] in
  Alcotest.(check (array (float 0.0))) "interleave" [| 1.0; 3.0; 2.0; 4.0 |] (Fpan.Gen.interleave x y)

(* --- programmatic generalization beyond the paper's sizes --- *)

let test_add_n_family () =
  List.iter
    (fun n ->
      let net = Fpan.Networks.add_n n in
      let report = Fpan.Checker.check_add net ~terms:n ~cases:40_000 ~seed:4243 in
      if not (Fpan.Checker.passed report) then
        Alcotest.failf "add_n %d: %d failures, worst 2^%.2f" n report.Fpan.Checker.failure_count
          report.Fpan.Checker.worst_error_log2)
    [ 2; 3; 5; 6 ]

let test_mul_n_family () =
  List.iter
    (fun n ->
      let net = Fpan.Networks.mul_n n in
      let report =
        Fpan.Checker.check_mul net ~terms:n ~expand:(Fpan.Networks.mul_expand n) ~cases:30_000
          ~seed:4244
      in
      if not (Fpan.Checker.passed report) then
        Alcotest.failf "mul_n %d: %d failures, worst 2^%.2f" n report.Fpan.Checker.failure_count
          report.Fpan.Checker.worst_error_log2)
    [ 2; 3; 4; 5 ]

(* --- structured exhaustive sweep --- *)

let test_sign_exhaustive_add2 () =
  (* The paper: "FPANs exhibit different rounding error patterns for
     every permutation of the signs and magnitudes of their inputs."
     Sweep add2 exhaustively over all 2^4 sign patterns x a grid of
     mantissa shapes x adjacent-gap choices: a structured complement to
     the random checker. *)
  let mantissas = [| 1.0; 1.5; 1.0 +. Float.ldexp 1.0 (-52); 2.0 -. Float.ldexp 1.0 (-52); 1.25 |] in
  let gaps = [| 53; 54; 60 |] in
  let net = Fpan.Networks.add2 in
  let count = ref 0 in
  Array.iter
    (fun m0 ->
      Array.iter
        (fun m1 ->
          Array.iter
            (fun g0 ->
              Array.iter
                (fun g1 ->
                  for signs = 0 to 15 do
                    let s k = if (signs lsr k) land 1 = 0 then 1.0 else -1.0 in
                    let x0 = s 0 *. m0 in
                    let x1 = s 1 *. Float.ldexp m1 (-g0) in
                    let y0 = s 2 *. m1 in
                    let y1 = s 3 *. Float.ldexp m0 (-g1) in
                    let inputs = [| x0; y0; x1; y1 |] in
                    if
                      Eft.is_nonoverlapping x0 x1 && Eft.is_nonoverlapping y0 y1
                    then begin
                      incr count;
                      match Fpan.Checker.check_outputs net ~inputs with
                      | None -> ()
                      | Some _ -> Alcotest.failf "sign sweep violation at signs=%d" signs
                    end
                  done)
                gaps)
            gaps)
        mantissas)
    mantissas;
  Alcotest.(check bool) (Printf.sprintf "swept %d cases" !count) true (!count > 1500)

(* --- static analysis --- *)

let test_analyze_certificates () =
  (* No-cancellation certificates: the conservative static bound lands
     within a few bits of the claimed q (see DESIGN.md). *)
  let cases =
    [ ("add2", Fpan.Analyze.Add_inputs 2, -3);
      ("add3", Fpan.Analyze.Add_inputs 3, -4);
      ("add4", Fpan.Analyze.Add_inputs 4, -3);
      ("mul2", Fpan.Analyze.Mul_inputs 2, 0);
      ("mul3", Fpan.Analyze.Mul_inputs 3, -4);
      ("mul4", Fpan.Analyze.Mul_inputs 4, -7) ]
  in
  List.iter
    (fun (name, kind, slack) ->
      let net = List.assoc name Fpan.Networks.all in
      if not (Fpan.Analyze.certifies net kind ~slack) then
        Alcotest.failf "%s: static certificate at slack %d failed" name slack;
      (* One bit tighter must fail: the bound is sharp for the
         abstraction. *)
      if Fpan.Analyze.certifies net kind ~slack:(slack + 1) then
        Alcotest.failf "%s: certificate unexpectedly tighter" name)
    cases

let test_analyze_is_sound () =
  (* The observed discarded errors never exceed the static bound. *)
  let net = Fpan.Networks.add3 in
  let r = Fpan.Analyze.analyze net (Fpan.Analyze.Add_inputs 3) in
  for _ = 1 to 2000 do
    let x, y = Fpan.Gen.pair rng ~n:3 ~e0_min:0 ~e0_max:0 () in
    let inputs = Fpan.Gen.interleave x y in
    let e0 =
      Array.fold_left (fun acc v -> max acc (Eft.exponent v)) min_int [| inputs.(0); inputs.(1) |]
    in
    let audit = Fpan.Interp.run_audited net inputs in
    let total = List.fold_left (fun acc d -> acc +. Float.abs d) 0.0 audit.Fpan.Interp.discarded in
    if total > Float.ldexp 1.0 (e0 + r.Fpan.Analyze.discarded_total_exponent + 1) then
      Alcotest.failf "discarded %h beyond static bound" total
  done

(* --- rendering --- *)

let test_dot_render () =
  let s = Fpan.Dot.render Fpan.Networks.add2 in
  Alcotest.(check bool) "digraph" true (String.length s > 100);
  let count_sub sub =
    let n = ref 0 in
    let len = String.length sub in
    for i = 0 to String.length s - len do
      if String.sub s i len = sub then incr n
    done;
    !n
  in
  Alcotest.(check int) "6 gate nodes" 6 (count_sub "shape=box" + count_sub "shape=circle");
  Alcotest.(check int) "4 inputs" 4 (count_sub "shape=plaintext" - 2)

(* --- search --- *)

let test_mutate_well_formed () =
  let net = ref Fpan.Networks.add2 in
  for _ = 1 to 500 do
    net := Fpan.Search.mutate rng !net
    (* Network.make's internal assertions validate wire indices. *)
  done;
  Alcotest.(check bool) "still well-formed" true (Fpan.Network.size !net >= 0)

let test_grow_from_empty () =
  (* The Section 4.1 discovery phase: random growth finds SOME passing
     2-term addition network (typically in well under a second). *)
  match Fpan.Search.grow_from_empty ~seed:21 ~terms:2 ~attempts:2000 ~quick_cases:1500 () with
  | None -> Alcotest.fail "no network discovered"
  | Some net ->
      let report = Fpan.Checker.check_add net ~terms:2 ~cases:60_000 ~seed:3 in
      Alcotest.(check bool) "discovered network passes" true (Fpan.Checker.passed report)

let test_anneal_keeps_correctness () =
  (* A short annealing run must return a network that still passes the
     checker (possibly the seed itself). *)
  let best = Fpan.Search.anneal ~seed:11 ~steps:300 ~terms:2 ~is_mul:false ~quick_cases:500 Fpan.Networks.add2 in
  let report = Fpan.Checker.check_add best ~terms:2 ~cases:20_000 ~seed:99 in
  Alcotest.(check bool) "anneal result passes" true (Fpan.Checker.passed report);
  Alcotest.(check bool) "not larger" true (Fpan.Network.size best <= Fpan.Network.size Fpan.Networks.add2)

let () =
  Alcotest.run "fpan"
    [ ( "structure",
        [ Alcotest.test_case "size/depth table" `Quick test_size_depth;
          Alcotest.test_case "gate counts/flops" `Quick test_gate_counts_flops ] );
      ( "checker",
        [ Alcotest.test_case "add2" `Slow test_checker_add2;
          Alcotest.test_case "add3" `Slow test_checker_add3;
          Alcotest.test_case "add4" `Slow test_checker_add4;
          Alcotest.test_case "mul2" `Slow test_checker_mul2;
          Alcotest.test_case "mul3" `Slow test_checker_mul3;
          Alcotest.test_case "mul4" `Slow test_checker_mul4;
          Alcotest.test_case "rejects naive" `Quick test_checker_catches_bad_network;
          Alcotest.test_case "rejects sloppy" `Quick test_checker_catches_sloppy ] );
      ( "interp",
        [ Alcotest.test_case "audited = run" `Quick test_audited_matches_run;
          Alcotest.test_case "exact accounting" `Quick test_discarded_accounting ] );
      ( "mul_expand",
        [ Alcotest.test_case "layout sizes" `Quick test_mul_expand_layout;
          Alcotest.test_case "cutoff value" `Quick test_mul_expand_value ] );
      ( "generators",
        [ Alcotest.test_case "nonoverlapping" `Quick test_gen_nonoverlapping;
          Alcotest.test_case "interleave" `Quick test_gen_interleave ] );
      ( "add-n",
        [ Alcotest.test_case "add family n=2..6" `Slow test_add_n_family;
          Alcotest.test_case "mul family n=2..5" `Slow test_mul_n_family ] );
      ( "sweeps",
        [ Alcotest.test_case "exhaustive signs add2" `Quick test_sign_exhaustive_add2 ] );
      ( "analyze",
        [ Alcotest.test_case "certificates" `Quick test_analyze_certificates;
          Alcotest.test_case "soundness" `Quick test_analyze_is_sound ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_dot_render ]);
      ( "enumerate",
        [ Alcotest.test_case "mul2 optimality (sizes 0-2)" `Quick (fun () ->
              (* Figure 5's size-3 network is optimal: the paper proves
                 it by exhaustive enumeration; here the complete spaces
                 below size 3 are swept (1 + 36 + 1296 candidates). *)
              List.iter
                (fun size ->
                  let r = Fpan.Enumerate.search_mul2_size ~size ~checker_cases:60_000 () in
                  if r.Fpan.Enumerate.verified_correct <> [] then
                    Alcotest.failf "a %d-gate mul network passed?!" size)
                [ 0; 1; 2 ]);
          Alcotest.test_case "no tiny network exists" `Quick (fun () ->
              (* Lower-bound half of the Figure 2 optimality claim at
                 small sizes (size 4 runs in the bench/tool; size 5 is
                 recorded in EXPERIMENTS.md). *)
              List.iter
                (fun size ->
                  let r = Fpan.Enumerate.search_size ~size ~checker_cases:20_000 () in
                  if r.Fpan.Enumerate.verified_correct <> [] then
                    Alcotest.failf "a %d-gate network passed?!" size)
                [ 1; 2; 3 ]);
          Alcotest.test_case "battery accepts the real add2" `Quick (fun () ->
              (* Sanity: the filter must not be so strict that the
                 genuine network would be rejected.  Run add2's gates
                 through the checker the enumerator uses. *)
              let report = Fpan.Checker.check_add Fpan.Networks.add2 ~terms:2 ~cases:20_000 ~seed:1 in
              Alcotest.(check bool) "add2 passes" true (Fpan.Checker.passed report)) ] );
      ( "search",
        [ Alcotest.test_case "mutate well-formed" `Quick test_mutate_well_formed;
          Alcotest.test_case "grow from empty" `Slow test_grow_from_empty;
          Alcotest.test_case "anneal correctness" `Slow test_anneal_keeps_correctness ] ) ]
