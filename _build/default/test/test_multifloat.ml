(* Tests for the MultiFloat kernels (Mf2/Mf3/Mf4) and derived ops.

   The hand-inlined kernels must agree BIT-FOR-BIT with the Fpan
   network interpreter on the same networks, and meet the paper's error
   bounds against the exact oracle. *)

let rng = Random.State.make [| 0x3f; 0x5eed |]

(* Module-level handles so each size can be tested through one functor. *)
module type MF = Multifloat.Ops.S

module Test_size
    (M : MF)
    (Net : sig
      val add_net : Fpan.Network.t
      val mul_net : Fpan.Network.t
    end) =
struct
  let n = M.terms

  let random_mf ?(e0_min = -60) ?(e0_max = 60) () =
    M.of_components (Fpan.Gen.expansion rng ~n ~e0_min ~e0_max ())

  let random_pair () =
    let x, y = Fpan.Gen.pair rng ~n ~e0_min:(-60) ~e0_max:60 () in
    (M.of_components x, M.of_components y)

  let exact_of m = Exact.sum_floats (M.components m)

  (* Relative error of [got] against exact value [ref_], in bits;
     neg_infinity when exact. *)
  let rel_error_log2 got ref_ =
    let diff = Exact.sum (exact_of got) (Exact.neg ref_) in
    let d = Float.abs (Exact.approx (Exact.compress diff)) in
    let r = Float.abs (Exact.approx (Exact.compress ref_)) in
    if d = 0.0 then Float.neg_infinity
    else if r = 0.0 then Float.infinity
    else Float.log2 d -. Float.log2 r

  let check_bits name bound got ref_ =
    let e = rel_error_log2 got ref_ in
    if e > Float.of_int (-bound) then
      Alcotest.failf "%s: relative error 2^%.2f exceeds 2^-%d" name e bound

  let test_add_matches_network () =
    for _ = 1 to 2000 do
      let a, b = random_pair () in
      let inputs = Fpan.Gen.interleave (M.components a) (M.components b) in
      let expected = Fpan.Interp.run Net.add_net inputs in
      let got = M.components (M.add a b) in
      if got <> expected then
        Alcotest.failf "add mismatch vs interpreter: got %s, expected %s"
          (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") got)))
          (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") expected)))
    done

  let test_mul_matches_network () =
    for _ = 1 to 2000 do
      let a, b = random_pair () in
      let inputs = Fpan.Networks.mul_expand n (M.components a) (M.components b) in
      let expected = Fpan.Interp.run Net.mul_net inputs in
      let got = M.components (M.mul a b) in
      if got <> expected then Alcotest.fail "mul mismatch vs interpreter"
    done

  let test_add_accuracy () =
    for _ = 1 to 2000 do
      let a, b = random_pair () in
      let ref_ = Exact.sum (exact_of a) (exact_of b) in
      check_bits "add" Net.add_net.Fpan.Network.error_exp (M.add a b) ref_;
      let out = M.components (M.add a b) in
      if not (Eft.is_nonoverlapping_seq out) then Alcotest.fail "add output overlaps"
    done

  let test_mul_accuracy () =
    for _ = 1 to 2000 do
      let a, b = random_pair () in
      let ref_ = Exact.mul (exact_of a) (exact_of b) in
      check_bits "mul" Net.mul_net.Fpan.Network.error_exp (M.mul a b) ref_;
      let out = M.components (M.mul a b) in
      if not (Eft.is_nonoverlapping_seq out) then Alcotest.fail "mul output overlaps"
    done

  let test_scalar_ops () =
    for _ = 1 to 2000 do
      let a = random_mf () in
      let f = Float.ldexp (Random.State.float rng 2.0 -. 1.0) (Random.State.int rng 40 - 20) in
      let fm = M.of_float f in
      check_bits "add_float" (M.error_exp - 1) (M.add_float a f) (Exact.sum (exact_of a) (Exact.of_float f));
      check_bits "sub_float" (M.error_exp - 1) (M.sub_float a f)
        (Exact.sum (exact_of a) (Exact.of_float (-.f)));
      check_bits "mul_float" (M.error_exp - 1) (M.mul_float a f) (Exact.mul (exact_of a) (exact_of fm))
    done

  let test_sub_is_add_neg () =
    for _ = 1 to 500 do
      let a, b = random_pair () in
      let d1 = M.components (M.sub a b) in
      let d2 = M.components (M.add a (M.neg b)) in
      if d1 <> d2 then Alcotest.fail "sub <> add . neg"
    done

  let test_commutativity () =
    (* Section 4.2: the commutativity layer makes add and mul exactly
       symmetric in their arguments. *)
    for _ = 1 to 2000 do
      let a, b = random_pair () in
      if M.components (M.add a b) <> M.components (M.add b a) then Alcotest.fail "add not commutative";
      if M.components (M.mul a b) <> M.components (M.mul b a) then Alcotest.fail "mul not commutative"
    done

  let test_identities () =
    for _ = 1 to 500 do
      let a = random_mf () in
      if not (M.equal (M.add a M.zero) a) then Alcotest.fail "a + 0 <> a";
      if not (M.equal (M.mul a M.one) a) then Alcotest.fail "a * 1 <> a";
      if not (M.is_zero (M.sub a a)) then Alcotest.fail "a - a <> 0";
      if not (M.equal (M.neg (M.neg a)) a) then Alcotest.fail "-(-a) <> a"
    done

  let test_div () =
    for _ = 1 to 500 do
      let a, b = random_pair () in
      if not (M.is_zero b) then begin
        let q = M.div a b in
        (* b * q should reproduce a to nearly full precision. *)
        check_bits "div roundtrip" (M.error_exp - 5) (M.mul b q) (exact_of a)
      end
    done;
    (* Exact cases. *)
    let three = M.of_int 3 in
    let six = M.of_int 6 in
    if not (M.equal (M.div six three) (M.of_int 2)) then Alcotest.fail "6/3 <> 2";
    if not (Float.is_nan (M.to_float (M.div M.one M.zero)) || M.to_float (M.div M.one M.zero) = Float.infinity)
    then Alcotest.fail "1/0 not inf/nan"

  let test_inv () =
    for _ = 1 to 300 do
      let a = random_mf () in
      if not (M.is_zero a) then check_bits "inv" (M.error_exp - 5) (M.mul a (M.inv a)) (Exact.of_float 1.0)
    done

  let test_sqrt () =
    for _ = 1 to 500 do
      let a = random_mf () in
      let a = M.abs a in
      if not (M.is_zero a) then begin
        let s = M.sqrt a in
        check_bits "sqrt" (M.error_exp - 5) (M.mul s s) (exact_of a)
      end
    done;
    if not (M.equal (M.sqrt (M.of_int 4)) (M.of_int 2)) then Alcotest.fail "sqrt 4 <> 2";
    if not (M.is_zero (M.sqrt M.zero)) then Alcotest.fail "sqrt 0 <> 0";
    if not (M.is_nan (M.sqrt (M.of_int (-1)))) then Alcotest.fail "sqrt -1 not nan"

  let test_compare () =
    for _ = 1 to 500 do
      let a, b = random_pair () in
      let c = M.compare a b in
      let exact_c = Exact.sign (Exact.sum (exact_of a) (Exact.neg (exact_of b))) in
      if c <> exact_c then Alcotest.failf "compare %d <> exact %d" c exact_c;
      if not (M.equal (M.min a b) (if c <= 0 then a else b)) then Alcotest.fail "min";
      if not (M.equal (M.max a b) (if c <= 0 then b else a)) then Alcotest.fail "max"
    done

  let test_of_int () =
    List.iter
      (fun i ->
        let m = M.of_int i in
        if not (Exact.is_exactly (exact_of m) (Float.of_int i)) && Stdlib.abs i < 1 lsl 53 then
          Alcotest.failf "of_int %d inexact" i;
        (* For large ints, check via string of the exact expansion sum. *)
        if Stdlib.abs i >= 1 lsl 53 then begin
          let back = Exact.approx (exact_of m) in
          if Float.abs (back -. Float.of_int i) > 2.0 then Alcotest.failf "of_int %d too far" i
        end)
      [ 0; 1; -1; 42; 1 lsl 52; (1 lsl 60) + 12345; -((1 lsl 61) + 987654321); max_int ]

  let test_pow_int () =
    let two = M.of_int 2 in
    if not (M.equal (M.pow_int two 10) (M.of_int 1024)) then Alcotest.fail "2^10";
    if not (M.equal (M.pow_int two 0) M.one) then Alcotest.fail "x^0";
    check_bits "2^-3" (M.error_exp - 5) (M.pow_int two (-3)) (Exact.of_float 0.125)

  let test_string_roundtrip () =
    for _ = 1 to 200 do
      let a = random_mf ~e0_min:(-30) ~e0_max:30 () in
      let s = M.to_string a in
      let b = M.of_string s in
      let e = rel_error_log2 b (exact_of a) in
      (* Decimal round-trip at full digits: allow a few ulps. *)
      let budget = Float.of_int (-(M.precision_bits - 8)) in
      if e > budget then Alcotest.failf "roundtrip %s: error 2^%.2f > 2^%.2f" s e budget
    done;
    Alcotest.(check string) "nan" "nan" (M.to_string (M.of_float Float.nan));
    Alcotest.(check string) "zero" "0.0" (M.to_string M.zero);
    Alcotest.(check string) "1.5 digits=2" "1.5" (M.to_string ~digits:2 (M.of_string "1.5"));
    Alcotest.(check string) "sci" "1.0e+10" (M.to_string ~digits:2 (M.of_string "1e10"))

  let test_of_string_forms () =
    let cases =
      [ ("1", 1.0); ("-2.5", -2.5); ("+0.125", 0.125); ("1e3", 1000.0); ("2.5E-1", 0.25);
        ("  7  ", 7.0); ("1_000", 1000.0) ]
    in
    List.iter
      (fun (s, v) ->
        if not (Exact.is_exactly (exact_of (M.of_string s)) v) then Alcotest.failf "of_string %S" s)
      cases;
    List.iter
      (fun s -> match M.of_string s with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.failf "of_string %S should fail" s)
      [ ""; "abc"; "1.2.3"; "1e"; "--5" ]

  let test_infix () =
    let open M.Infix in
    let a = M.of_int 10 and b = M.of_int 3 in
    if not (a + b = M.of_int 13) then Alcotest.fail "+";
    if not (a - b = M.of_int 7) then Alcotest.fail "-";
    if not (a * b = M.of_int 30) then Alcotest.fail "*";
    if not (b < a) then Alcotest.fail "<";
    if not (~-a = M.of_int (-10)) then Alcotest.fail "~-"

  let test_rem () =
    let r = M.rem (M.of_string "7.5") (M.of_int 2) in
    if not (M.equal r (M.of_string "1.5")) then Alcotest.failf "7.5 rem 2 = %s" (M.to_string r);
    let r = M.rem (M.of_string "-7.5") (M.of_int 2) in
    if not (M.equal r (M.of_string "-1.5")) then Alcotest.fail "-7.5 rem 2";
    for _ = 1 to 300 do
      let a = random_mf ~e0_min:(-10) ~e0_max:20 () in
      let b = random_mf ~e0_min:(-5) ~e0_max:5 () in
      if not (M.is_zero b) then begin
        let r = M.rem a b in
        (* |r| < |b| and a - r is a multiple of b (to precision) *)
        if M.compare (M.abs r) (M.abs b) >= 0 then Alcotest.fail "rem magnitude";
        let k = M.div (M.sub a r) b in
        let d = Float.abs (M.to_float (M.sub k (M.round k))) in
        if d > 1e-25 then Alcotest.failf "quotient not integral: %h" d
      end
    done

  let test_hex_roundtrip () =
    for _ = 1 to 500 do
      let a = random_mf () in
      let b = M.of_hex (M.to_hex a) in
      if M.components b <> M.components a then Alcotest.fail "hex roundtrip not exact"
    done;
    (match M.of_hex "garbage" with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "of_hex should reject garbage");
    match M.of_hex "0x1p0" with
    | exception Invalid_argument _ -> if M.terms = 1 then Alcotest.fail "1 comp valid for n=1"
    | _ -> if M.terms <> 1 then Alcotest.fail "wrong component count accepted"

  let test_scale_pow2 () =
    for _ = 1 to 200 do
      let a = random_mf () in
      let k = Random.State.int rng 40 - 20 in
      let s = M.scale_pow2 a k in
      let expected = Exact.scale (exact_of a) (Float.ldexp 1.0 k) in
      if Exact.sign (Exact.sum (exact_of s) (Exact.neg expected)) <> 0 then
        Alcotest.fail "scale_pow2 not exact"
    done

  let suite name =
    ( name,
      [ Alcotest.test_case "add = network" `Quick test_add_matches_network;
        Alcotest.test_case "mul = network" `Quick test_mul_matches_network;
        Alcotest.test_case "add accuracy + nonoverlap" `Quick test_add_accuracy;
        Alcotest.test_case "mul accuracy + nonoverlap" `Quick test_mul_accuracy;
        Alcotest.test_case "scalar ops accuracy" `Quick test_scalar_ops;
        Alcotest.test_case "sub = add . neg" `Quick test_sub_is_add_neg;
        Alcotest.test_case "commutativity" `Quick test_commutativity;
        Alcotest.test_case "algebraic identities" `Quick test_identities;
        Alcotest.test_case "div" `Quick test_div;
        Alcotest.test_case "inv" `Quick test_inv;
        Alcotest.test_case "sqrt" `Quick test_sqrt;
        Alcotest.test_case "compare/min/max" `Quick test_compare;
        Alcotest.test_case "of_int" `Quick test_of_int;
        Alcotest.test_case "pow_int" `Quick test_pow_int;
        Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
        Alcotest.test_case "of_string forms" `Quick test_of_string_forms;
        Alcotest.test_case "infix" `Quick test_infix;
        Alcotest.test_case "scale_pow2 exact" `Quick test_scale_pow2;
        Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
        Alcotest.test_case "rem" `Quick test_rem ] )
end

module T2 =
  Test_size
    (Multifloat.Mf2)
    (struct
      let add_net = Fpan.Networks.add2
      let mul_net = Fpan.Networks.mul2
    end)

module T3 =
  Test_size
    (Multifloat.Mf3)
    (struct
      let add_net = Fpan.Networks.add3
      let mul_net = Fpan.Networks.mul3
    end)

module T4 =
  Test_size
    (Multifloat.Mf4)
    (struct
      let add_net = Fpan.Networks.add4
      let mul_net = Fpan.Networks.mul4
    end)

(* Generic functor cross-checks. *)
module G2 =
  Multifloat.Generic.Make
    (Multifloat.Base.Double)
    (struct
      let terms = 2
    end)

module G4 =
  Multifloat.Generic.Make
    (Multifloat.Base.Double)
    (struct
      let terms = 4
    end)

module G6 =
  Multifloat.Generic.Make
    (Multifloat.Base.Double)
    (struct
      let terms = 6
    end)

let generic_rel_check name bound got_comps ref_ =
  let diff = Exact.sum (Exact.sum_floats got_comps) (Exact.neg ref_) in
  let d = Float.abs (Exact.approx (Exact.compress diff)) in
  let r = Float.abs (Exact.approx (Exact.compress ref_)) in
  if d <> 0.0 && r <> 0.0 && Float.log2 d -. Float.log2 r > Float.of_int (-bound) then
    Alcotest.failf "%s: error too large (2^%.2f)" name (Float.log2 d -. Float.log2 r)

let test_generic_matches_exact () =
  for _ = 1 to 1000 do
    let x, y = Fpan.Gen.pair rng ~n:4 ~e0_min:(-60) ~e0_max:60 () in
    let a = G4.of_components x and b = G4.of_components y in
    generic_rel_check "generic add" 200 (G4.components (G4.add a b))
      (Exact.sum (Exact.sum_floats x) (Exact.sum_floats y));
    generic_rel_check "generic mul" 200 (G4.components (G4.mul a b))
      (Exact.mul (Exact.sum_floats x) (Exact.sum_floats y))
  done

let test_generic_n6 () =
  (* 6-term expansions: ~322-bit arithmetic beyond the paper's sizes. *)
  let two = G6.of_float 2.0 in
  let s = G6.sqrt two in
  let err = G6.components (G6.sub (G6.mul s s) two) in
  let mag = Float.abs (Exact.approx (Exact.sum_floats err)) in
  if mag > Float.ldexp 1.0 (-260) then Alcotest.failf "n=6 sqrt too inaccurate: %h" mag

let test_generic_div () =
  for _ = 1 to 200 do
    let x, y = Fpan.Gen.pair rng ~n:2 ~e0_min:(-40) ~e0_max:40 () in
    let a = G2.of_components x and b = G2.of_components y in
    if G2.to_float b <> 0.0 then
      generic_rel_check "generic div" 95 (G2.components (G2.mul b (G2.div a b))) (Exact.sum_floats x)
  done

let test_mul_no_fma () =
  (* Same network, TwoProd via Dekker splitting: bit-identical results
     within the exactness domain of the splitting. *)
  for _ = 1 to 3000 do
    let x, y = Fpan.Gen.pair rng ~n:4 ~e0_min:(-60) ~e0_max:60 () in
    let a2 = Multifloat.Mf2.of_components (Array.sub x 0 2) in
    let b2 = Multifloat.Mf2.of_components (Array.sub y 0 2) in
    if
      Multifloat.Mf2.components (Multifloat.Mf2.mul a2 b2)
      <> Multifloat.Mf2.components (Multifloat.Mf2.mul_no_fma a2 b2)
    then Alcotest.fail "mf2 mul_no_fma differs";
    let a3 = Multifloat.Mf3.of_components (Array.sub x 0 3) in
    let b3 = Multifloat.Mf3.of_components (Array.sub y 0 3) in
    if
      Multifloat.Mf3.components (Multifloat.Mf3.mul a3 b3)
      <> Multifloat.Mf3.components (Multifloat.Mf3.mul_no_fma a3 b3)
    then Alcotest.fail "mf3 mul_no_fma differs";
    let a4 = Multifloat.Mf4.of_components x in
    let b4 = Multifloat.Mf4.of_components y in
    if
      Multifloat.Mf4.components (Multifloat.Mf4.mul a4 b4)
      <> Multifloat.Mf4.components (Multifloat.Mf4.mul_no_fma a4 b4)
    then Alcotest.fail "mf4 mul_no_fma differs"
  done

let test_complex_conjugate_exact () =
  (* Section 4.2: commutative multiplication makes conjugate products
     exactly real. *)
  let module C = Multifloat.Mf_complex.C4 in
  let module M = Multifloat.Mf4 in
  for _ = 1 to 2000 do
    let re = M.of_components (Fpan.Gen.expansion rng ~n:4 ~e0_min:(-20) ~e0_max:20 ()) in
    let im = M.of_components (Fpan.Gen.expansion rng ~n:4 ~e0_min:(-20) ~e0_max:20 ()) in
    let z = C.make re im in
    let w = C.mul z (C.conj z) in
    if not (M.is_zero w.C.im) then Alcotest.fail "conjugate product has imaginary part";
    (* and the real part is re^2 + im^2 to working accuracy *)
    if not (M.equal w.C.re (C.norm2 z)) then Alcotest.fail "conjugate product real part"
  done

let test_floor_family (type a) (module M : Multifloat.Ops.S with type t = a) () =
  let check v fl ce tr ro =
    let got name f expect =
      if not (M.equal (f (M.of_string v)) (M.of_int expect)) then
        Alcotest.failf "%s %s: expected %d" name v expect
    in
    got "floor" M.floor fl;
    got "ceil" M.ceil ce;
    got "trunc" M.trunc tr;
    got "round" M.round ro
  in
  check "2.5" 2 3 2 3;
  check "-2.5" (-3) (-2) (-2) (-3);
  check "7" 7 7 7 7;
  check "-0.25" (-1) 0 0 0;
  check "0.75" 0 1 0 1;
  Alcotest.(check int) "to_int" 123 (M.to_int (M.of_string "123.75"));
  Alcotest.(check int) "to_int neg" (-123) (M.to_int (M.of_string "-123.75"));
  (* floor captures integers wider than one double *)
  let big = M.add (M.scale_pow2 M.one 60) (M.of_string "0.5") in
  if not (M.equal (M.floor big) (M.scale_pow2 M.one 60)) then Alcotest.fail "floor of wide int";
  (* exactness: floor x <= x < floor x + 1 *)
  let rng = Random.State.make [| 77 |] in
  for _ = 1 to 500 do
    let x = M.of_float (Random.State.float rng 2000.0 -. 1000.0) in
    let f = M.floor x in
    if M.compare f x > 0 then Alcotest.fail "floor above x";
    if M.compare x (M.add f M.one) >= 0 then Alcotest.fail "floor too small"
  done

let test_rand () =
  let module R = Multifloat.Rand.Make (Multifloat.Mf3) in
  let module M = Multifloat.Mf3 in
  let st = Random.State.make [| 808 |] in
  (* range and full-width content *)
  let low_bits_nonzero = ref 0 in
  for _ = 1 to 500 do
    let u = R.uniform st in
    if M.compare u M.zero < 0 || M.compare u M.one >= 0 then Alcotest.fail "uniform out of [0,1)";
    let c = M.components u in
    if Array.length c >= 3 && c.(2) <> 0.0 then incr low_bits_nonzero
  done;
  Alcotest.(check bool) "low terms populated" true (!low_bits_nonzero > 450);
  (* mean/variance sanity for gaussian *)
  let n = 4000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let g = M.to_float (R.gaussian st) in
    sum := !sum +. g;
    sum2 := !sum2 +. (g *. g)
  done;
  let mean = !sum /. Float.of_int n in
  let var = (!sum2 /. Float.of_int n) -. (mean *. mean) in
  Alcotest.(check bool) (Printf.sprintf "mean %.3f" mean) true (Float.abs mean < 0.08);
  Alcotest.(check bool) (Printf.sprintf "var %.3f" var) true (Float.abs (var -. 1.0) < 0.12);
  (* range helper *)
  let v = R.uniform_range st ~lo:(M.of_int 5) ~hi:(M.of_int 6) in
  Alcotest.(check bool) "range" true (M.compare v (M.of_int 5) >= 0 && M.compare v (M.of_int 6) < 0)

let test_complex_field_ops () =
  let module C = Multifloat.Mf_complex.C2 in
  let module M = Multifloat.Mf2 in
  let z = C.make (M.of_int 3) (M.of_int 4) in
  if not (M.equal (C.abs z) (M.of_int 5)) then Alcotest.fail "|3+4i| <> 5";
  let w = C.div z z in
  if not (C.equal w C.one || M.to_float (M.sub w.C.re M.one) < 1e-25) then
    Alcotest.fail "z/z <> 1";
  if not (C.equal (C.mul C.i C.i) (C.neg C.one)) then Alcotest.fail "i^2 <> -1";
  if not (C.equal (C.add z (C.neg z)) C.zero) then Alcotest.fail "z - z <> 0"

let () =
  Alcotest.run "multifloat"
    [ T2.suite "mf2";
      T3.suite "mf3";
      T4.suite "mf4";
      ( "generic",
        [ Alcotest.test_case "n=4 vs exact" `Quick test_generic_matches_exact;
          Alcotest.test_case "n=6 sqrt" `Quick test_generic_n6;
          Alcotest.test_case "n=2 div" `Quick test_generic_div ] );
      ( "variants",
        [ Alcotest.test_case "mul_no_fma = mul" `Quick test_mul_no_fma;
          Alcotest.test_case "floor family mf2" `Quick (test_floor_family (module Multifloat.Mf2));
          Alcotest.test_case "floor family mf3" `Quick (test_floor_family (module Multifloat.Mf3));
          Alcotest.test_case "floor family mf4" `Quick (test_floor_family (module Multifloat.Mf4));
          Alcotest.test_case "conjugate product exact" `Quick test_complex_conjugate_exact;
          Alcotest.test_case "random variates" `Quick test_rand;
          Alcotest.test_case "complex field ops" `Quick test_complex_field_ops ] ) ]
