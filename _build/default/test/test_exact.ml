(* Tests for the exact expansion-arithmetic oracle. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.0))
let check_int = Alcotest.(check int)

let gen_tricky_float =
  let open QCheck.Gen in
  let scaled =
    let* m = float_range (-2.0) 2.0 in
    let* e = int_range (-50) 50 in
    return (Float.ldexp m e)
  in
  frequency [ (5, scaled); (1, return 0.0); (1, return 1.0); (1, return (-1.0)) ]

let arb_tricky = QCheck.make ~print:(Printf.sprintf "%h") gen_tricky_float
let arb_floats n = QCheck.(list_of_size (Gen.int_range 0 n) arb_tricky)

let value_via_compensated xs =
  (* Kahan-free reference: sum with an accumulator of many partials is not
     exact, so instead just check internal consistency of Exact itself in
     the property tests; here, small cases are checked by hand. *)
  Array.fold_left ( +. ) 0.0 xs

let test_basics () =
  check_int "sign zero" 0 (Exact.sign Exact.zero);
  check_int "sign pos" 1 (Exact.sign (Exact.of_float 3.5));
  check_int "sign neg" (-1) (Exact.sign (Exact.of_float (-1e-300)));
  check_bool "is_exactly" true (Exact.is_exactly (Exact.of_float 2.5) 2.5);
  check_bool "not is_exactly" false (Exact.is_exactly (Exact.of_float 2.5) 2.0)

let test_grow_exact () =
  (* 1 + 2^-70 cannot be represented in one float but must be exact as an
     expansion. *)
  let tiny = Float.ldexp 1.0 (-70) in
  let e = Exact.grow (Exact.of_float 1.0) tiny in
  check_bool "exact sum kept" true (Exact.sign (Exact.grow (Exact.grow e (-1.0)) (-.tiny)) = 0);
  check_float "approx" 1.0 (Exact.approx e)

let test_sum_floats_cancellation () =
  let xs = [| 1e100; 1.0; -1e100; 1e-100; -1.0 |] in
  let e = Exact.sum_floats xs in
  check_bool "massive cancellation exact" true (Exact.is_exactly e 1e-100)

let test_scale () =
  let e = Exact.grow (Exact.of_float 1.0) (Float.ldexp 1.0 (-60)) in
  let s = Exact.scale e 3.0 in
  let expect = Exact.grow (Exact.of_float 3.0) (Float.ldexp 3.0 (-60)) in
  check_int "scale exact" 0 (Exact.sign (Exact.sum s (Exact.neg expect)))

let test_mul () =
  (* (1 + 2^-60)^2 = 1 + 2^-59 + 2^-120 exactly. *)
  let e = Exact.grow (Exact.of_float 1.0) (Float.ldexp 1.0 (-60)) in
  let p = Exact.mul e e in
  let expect =
    Exact.grow (Exact.grow (Exact.of_float 1.0) (Float.ldexp 1.0 (-59))) (Float.ldexp 1.0 (-120))
  in
  check_int "mul exact" 0 (Exact.sign (Exact.sum p (Exact.neg expect)))

let test_compress () =
  let e = Exact.sum_floats [| 1e16; 1.0; 1e-16; 3.0; -1e16 |] in
  let c = Exact.compress e in
  check_int "value preserved" 0 (Exact.sign (Exact.sum c (Exact.neg e)));
  let comps = Exact.components c in
  check_bool "no zeros inside" true (Array.for_all (fun x -> x <> 0.0) comps || Array.length comps = 1)

let test_compare_abs_scaled () =
  (* |1e-20| vs |1.0| * 2^-60: 1e-20 > 2^-60 ~ 8.7e-19?  No: 2^-60 ~ 8.7e-19,
     so 1e-20 < 2^-60. *)
  let e = Exact.of_float 1e-20 in
  check_int "below bound" (-1) (Exact.compare_abs_scaled e ~scale:1.0 ~bound:(Float.ldexp 1.0 (-60)));
  check_int "above bound" 1 (Exact.compare_abs_scaled e ~scale:1.0 ~bound:(Float.ldexp 1.0 (-70)));
  check_int "equal" 0
    (Exact.compare_abs_scaled (Exact.of_float (Float.ldexp 1.0 (-60))) ~scale:1.0 ~bound:(Float.ldexp 1.0 (-60)))

let prop_sum_floats_exact =
  (* Adding the negations must yield exactly zero. *)
  QCheck.Test.make ~count:3000 ~name:"sum_floats xs @ -xs = 0" (arb_floats 12) (fun xs ->
      let xs = Array.of_list xs in
      let neg = Array.map (fun x -> -.x) xs in
      Exact.sign (Exact.sum_floats (Array.append xs neg)) = 0)
  |> QCheck_alcotest.to_alcotest

let prop_sum_commutes =
  QCheck.Test.make ~count:3000 ~name:"sum_floats independent of order" (arb_floats 10) (fun xs ->
      let a = Array.of_list xs in
      let b = Array.of_list (List.rev xs) in
      Exact.sign (Exact.sum (Exact.sum_floats a) (Exact.neg (Exact.sum_floats b))) = 0)
  |> QCheck_alcotest.to_alcotest

let prop_compress_preserves =
  QCheck.Test.make ~count:3000 ~name:"compress preserves value" (arb_floats 10) (fun xs ->
      let e = Exact.sum_floats (Array.of_list xs) in
      Exact.sign (Exact.sum (Exact.compress e) (Exact.neg e)) = 0)
  |> QCheck_alcotest.to_alcotest

let prop_scale_distributes =
  QCheck.Test.make ~count:3000 ~name:"scale e (a+b)... via two scales"
    (QCheck.pair (arb_floats 6) arb_tricky) (fun (xs, b) ->
      let e = Exact.sum_floats (Array.of_list xs) in
      QCheck.assume (Array.for_all (fun x -> Float.abs x < 1e100) (Exact.components e));
      QCheck.assume (Float.abs b < 1e100);
      (* scale e b + scale e (-b) = 0 *)
      Exact.sign (Exact.sum (Exact.scale e b) (Exact.scale e (-.b))) = 0)
  |> QCheck_alcotest.to_alcotest

let prop_mul_matches_scale =
  QCheck.Test.make ~count:2000 ~name:"mul e [b] = scale e b" (QCheck.pair (arb_floats 6) arb_tricky)
    (fun (xs, b) ->
      let e = Exact.sum_floats (Array.of_list xs) in
      QCheck.assume (Array.for_all (fun x -> Float.abs x < 1e80) (Exact.components e));
      QCheck.assume (Float.abs b < 1e80 && b <> 0.0);
      Exact.sign (Exact.sum (Exact.mul e (Exact.of_float b)) (Exact.neg (Exact.scale e b))) = 0)
  |> QCheck_alcotest.to_alcotest

let prop_approx_close =
  QCheck.Test.make ~count:3000 ~name:"approx within 2 ulp of compressed head" (arb_floats 10) (fun xs ->
      let e = Exact.sum_floats (Array.of_list xs) in
      let c = Exact.components (Exact.compress e) in
      let a = Exact.approx e in
      let n = Array.length c in
      if n = 0 then a = 0.0
      else
        let head = c.(n - 1) in
        head = a || Float.abs (head -. a) <= 2.0 *. Eft.ulp head)
  |> QCheck_alcotest.to_alcotest

let () =
  ignore value_via_compensated;
  Alcotest.run "exact"
    [ ( "unit",
        [ Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "grow exact" `Quick test_grow_exact;
          Alcotest.test_case "cancellation" `Quick test_sum_floats_cancellation;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "compress" `Quick test_compress;
          Alcotest.test_case "compare_abs_scaled" `Quick test_compare_abs_scaled ] );
      ( "property",
        [ prop_sum_floats_exact;
          prop_sum_commutes;
          prop_compress_preserves;
          prop_scale_distributes;
          prop_mul_matches_scale;
          prop_approx_close ] ) ]
