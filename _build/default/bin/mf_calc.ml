(* mf_calc: an extended-precision command-line calculator.

   Evaluates +, -, *, /, ^ (integer powers), sqrt(), abs(), parentheses
   and decimal literals at 2-, 3-, or 4-term MultiFloat precision.

     dune exec bin/mf_calc.exe -- "sqrt(2) * sqrt(2) - 2"
     dune exec bin/mf_calc.exe -- -n 4 "(1/3 + 1/5) * 15"
     echo "1e30 + 1 - 1e30" | dune exec bin/mf_calc.exe -- -n 3 -
*)

open Cmdliner

let run terms digits exprs =
  let eval =
    match terms with
    | 2 ->
        let module E = Multifloat.Eval.Make (Multifloat.Mf2) (Multifloat.Elementary.F2) in
        E.run digits
    | 3 ->
        let module E = Multifloat.Eval.Make (Multifloat.Mf3) (Multifloat.Elementary.F3) in
        E.run digits
    | 4 ->
        let module E = Multifloat.Eval.Make (Multifloat.Mf4) (Multifloat.Elementary.F4) in
        E.run digits
    | _ ->
        Printf.eprintf "terms must be 2, 3, or 4\n";
        exit 2
  in
  let inputs =
    match exprs with
    | [ "-" ] | [] ->
        let rec read acc = match input_line stdin with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        read []
    | es -> es
  in
  exit (List.fold_left (fun acc e -> max acc (eval e)) 0 inputs)

let terms_arg =
  Arg.(value & opt int 2 & info [ "n"; "terms" ] ~docv:"N" ~doc:"Expansion length (2, 3, or 4).")

let digits_arg =
  Arg.(value & opt (some int) None & info [ "d"; "digits" ] ~docv:"D" ~doc:"Significant digits to print.")

let exprs_arg = Arg.(value & pos_all string [] & info [] ~docv:"EXPR")

let () =
  let doc = "Evaluate arithmetic expressions in extended-precision MultiFloat arithmetic." in
  let info = Cmd.info "mf_calc" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(const run $ terms_arg $ digits_arg $ exprs_arg)))
