(* Ill-conditioned dot products: the paper's motivating regime.

   Modern HPC workloads exhibit condition numbers of 1e10..1e20; at
   kappa * eps_double ~ 1 a double-precision result has no correct
   digits.  We generate dot products with a prescribed condition number
   (Ogita-Rump-Oishi style), evaluate them with native doubles and with
   2/3/4-term MultiFloats through the same generic BLAS kernel, and
   compare against the exact value.

   Run with: dune exec examples/ill_conditioned_dot.exe *)

let rng = Random.State.make [| 2024; 7 |]

(* Generate x, y of length n with condition number ~ 2^c_bits for the
   dot product: half the entries build up magnitude ~2^(c_bits/2), the
   rest are chosen so massive cancellation brings the result near 1. *)
let ill_conditioned_dot n c_bits =
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  let half = n / 2 in
  for i = 0 to half - 1 do
    let e = Random.State.int rng (max 1 (c_bits / 2)) in
    x.(i) <- Float.ldexp (Random.State.float rng 2.0 -. 1.0) e;
    y.(i) <- Float.ldexp (Random.State.float rng 2.0 -. 1.0) e
  done;
  (* Cancel the partial sum progressively. *)
  for i = half to n - 1 do
    let acc = ref Exact.zero in
    for j = 0 to i - 1 do
      acc := Exact.sum !acc (Exact.mul (Exact.of_float x.(j)) (Exact.of_float y.(j)))
    done;
    x.(i) <- Float.ldexp (Random.State.float rng 2.0 -. 1.0) 0;
    (* y_i ~ -(partial)/x_i, rounded to double: leaves a small residue. *)
    y.(i) <- -.Exact.approx !acc /. x.(i)
  done;
  (x, y)

let exact_dot x y =
  let acc = ref Exact.zero in
  Array.iteri (fun i xi -> acc := Exact.sum !acc (Exact.mul (Exact.of_float xi) (Exact.of_float y.(i)))) x;
  !acc

let rel_err approx exact =
  let diff = Exact.grow exact (-.approx) in
  let d = Float.abs (Exact.approx (Exact.compress diff)) in
  let r = Float.abs (Exact.approx (Exact.compress exact)) in
  if r = 0.0 then Float.abs d else d /. r

let dot_with (type a) (module N : Blas.Numeric.S with type t = a) x y =
  let module K = Blas.Kernels.Make (N) in
  N.to_float (K.dot ~x:(K.vec_of_floats x) ~y:(K.vec_of_floats y))

(* The planar (structure-of-arrays) batch kernel: same FPAN arithmetic
   and accumulation order, so the result is bitwise identical to the
   scalar path — only much faster on long vectors. *)
let dot_with_batched (type a) (module N : Blas.Numeric.BATCHED with type t = a) x y =
  let module K = Blas.Kernels.Make_batched (N) in
  N.to_float (K.dot ~x:(K.vec_of_floats x) ~y:(K.vec_of_floats y))

let () =
  print_endline "=== Ill-conditioned dot products ===";
  print_endline "(relative error of the leading double of each result)\n";
  Printf.printf "%10s  %12s  %12s  %12s  %12s  %12s\n" "condition" "double" "MultiFloat2"
    "MultiFloat3" "MultiFloat4" "Mf2 planar";
  let all_bitwise = ref true in
  List.iter
    (fun c_bits ->
      let x, y = ill_conditioned_dot 200 c_bits in
      let exact = exact_dot x y in
      let err_d = rel_err (dot_with (module Blas.Instances.Double) x y) exact in
      let d2 = dot_with (module Blas.Instances.Mf2) x y in
      let d2b = dot_with_batched (module Blas.Instances.Mf2) x y in
      if Int64.bits_of_float d2 <> Int64.bits_of_float d2b then all_bitwise := false;
      let err_2 = rel_err d2 exact in
      let err_2b = rel_err d2b exact in
      let err_3 = rel_err (dot_with (module Blas.Instances.Mf3) x y) exact in
      let err_4 = rel_err (dot_with (module Blas.Instances.Mf4) x y) exact in
      Printf.printf "%10s  %12.2e  %12.2e  %12.2e  %12.2e  %12.2e\n"
        (Printf.sprintf "~1e%d" (int_of_float (Float.of_int c_bits *. 0.30103)))
        err_d err_2 err_3 err_4 err_2b)
    [ 33; 66; 100; 133; 166 ];
  print_endline "\nDouble precision loses all digits beyond condition ~1e16, while the";
  print_endline "branch-free expansions keep full accuracy until their own precision";
  print_endline "(107/161/215 bits) is exhausted.";
  Printf.printf "\nPlanar (SoA) batched Mf2 dot %s the record-array result bit for bit.\n"
    (if !all_bitwise then "matches" else "DOES NOT match")
